package dp

import "fmt"

// Fault operator classes, as carried by FaultError.Op.
const (
	FaultDiv = "div" // division by zero
	FaultRem = "rem" // modulo by zero
	FaultLUT = "lut" // LUT index out of range
)

// FaultError is a data-path fault raised by a *valid* iteration — a zero
// divisor reaching a DIV/REM stage, or a LUT index outside its ROM
// (poisoned bubbles mask the same conditions instead of faulting). It is
// typed, rather than an opaque fmt.Errorf, so layers above the simulator
// — netlist.System.Run, SystemPool jobs, the rocccserve wire protocol —
// can carry the abort cycle and operator class across process boundaries
// and reconstruct the exact error on the far side.
//
// Cycle is the data-path clock of the aborted step (the step itself is
// discarded: Sim.abort rewinds the ring, so simulator state is exactly
// as before the faulting call).
type FaultError struct {
	Op    string // FaultDiv, FaultRem or FaultLUT
	Cycle int    // data-path cycle whose step aborted
	Msg   string // rendered message, stable across the wire
}

func (e *FaultError) Error() string { return e.Msg }

// faultErr builds the typed fault with its rendered message.
func faultErr(op string, cycle int, format string, args ...any) *FaultError {
	return &FaultError{Op: op, Cycle: cycle, Msg: fmt.Sprintf(format, args...)}
}
