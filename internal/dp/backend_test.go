package dp_test

import (
	"errors"
	"math/rand"
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// backend_test.go is the backend differential matrix: every non-interp
// backend runs the same workloads as the interpreter reference and must
// match it bit for bit — outputs on every cycle, feedback state, cycle
// counts, and on faulting schedules the typed *FaultError (operator
// class and abort cycle). The matrix covers the Table 1 kernels
// (including the feedback kernels), fuzzed kernels with and without
// faulting divisions, random bubble schedules, and planted
// divide-by-zero iterations.

// diffBackends drives one sim per backend through the same random
// schedule of valid and bubble runs and requires every backend to match
// the interp reference exactly.
func diffBackends(t *testing.T, name string, d *dp.Datapath, rng *rand.Rand, zeroInputs bool, cycles int) {
	t.Helper()
	backends := dp.Backends()
	sims := make([]*dp.Sim, len(backends))
	for i, b := range backends {
		sims[i] = dp.NewSimWith(d, b)
		if got := sims[i].Backend(); got != b {
			t.Fatalf("%s: NewSimWith(%v).Backend() = %v", name, b, got)
		}
	}
	ref := sims[0] // interp
	inW := len(d.Inputs)
	outW := len(d.Outputs)
	maxChunk := 40
	in := make([]int64, maxChunk*inW)
	outs := make([][]int64, len(backends))
	for i := range outs {
		outs[i] = make([]int64, maxChunk*outW)
	}
	errs := make([]error, len(backends))
	for done := 0; done < cycles; {
		n := 1 + rng.Intn(maxChunk)
		valid := rng.Intn(3) != 0
		if valid {
			for j := 0; j < n*inW; j++ {
				if zeroInputs && rng.Intn(6) == 0 {
					in[j] = 0
				} else {
					in[j] = rng.Int63n(1<<12) - 1<<11
				}
			}
		}
		for i, sim := range sims {
			var o []int64
			if valid {
				o, errs[i] = sim.StepN(in[:n*inW], n)
			} else {
				o, errs[i] = sim.DrainN(n)
			}
			if errs[i] == nil {
				copy(outs[i], o)
			}
		}
		for i := 1; i < len(backends); i++ {
			b := backends[i]
			if (errs[i] != nil) != (errs[0] != nil) {
				t.Fatalf("%s [%v]: error mismatch after %d cycles (n=%d valid=%v): %v vs interp %v",
					name, b, done, n, valid, errs[i], errs[0])
			}
			if errs[0] != nil {
				var fi, fr *dp.FaultError
				if errors.As(errs[i], &fi) != errors.As(errs[0], &fr) {
					t.Fatalf("%s [%v]: fault typing mismatch: %v vs interp %v", name, b, errs[i], errs[0])
				}
				if fi != nil && (fi.Op != fr.Op || fi.Cycle != fr.Cycle) {
					t.Fatalf("%s [%v]: fault mismatch: op=%s cycle=%d vs interp op=%s cycle=%d",
						name, b, fi.Op, fi.Cycle, fr.Op, fr.Cycle)
				}
				continue
			}
			for j := 0; j < n*outW; j++ {
				if outs[i][j] != outs[0][j] {
					t.Fatalf("%s [%v]: output mismatch at chunk cycle %d port %d (cycles %d..%d, valid=%v): %d vs interp %d",
						name, b, j/outW, j%outW, done, done+n-1, valid, outs[i][j], outs[0][j])
				}
			}
		}
		if errs[0] != nil {
			break
		}
		done += n
	}
	for i := 1; i < len(backends); i++ {
		b := backends[i]
		if sims[i].Cycle() != ref.Cycle() {
			t.Fatalf("%s [%v]: cycle count %d, interp %d", name, b, sims[i].Cycle(), ref.Cycle())
		}
		for v, rv := range ref.State {
			if bv, ok := sims[i].State[v]; !ok || bv != rv {
				t.Fatalf("%s [%v]: feedback %s: %d, interp %d", name, b, v.Name, sims[i].State[v], rv)
			}
		}
	}
}

// TestBackendDifferentialBenchKernels runs the full backend matrix over
// every Table 1 kernel on random bubble schedules.
func TestBackendDifferentialBenchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, k := range bench.All() {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		diffBackends(t, k.Name, res.Datapath, rng, false, 700)
	}
}

// TestBackendDifferentialFuzz extends the matrix to fuzzed kernels,
// rotating division-free kernels with division kernels fed occasional
// zeros (every backend must abort on the interpreter's cycle with the
// interpreter's fault).
func TestBackendDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1905))
	const kernels = 18
	for ki := 0; ki < kernels; ki++ {
		withDiv := ki%3 != 2
		src, _ := generateKernelDiv(rng, 2+rng.Intn(3), 3+rng.Intn(4), 1+rng.Intn(2), withDiv)
		res, err := core.CompileSource(src, "k", core.Options{
			Optimize: ki%2 == 0,
			PeriodNs: []float64{2.5, 5, 1000}[ki%3],
		})
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", ki, err, src)
		}
		diffBackends(t, src, res.Datapath, rng, withDiv, 400)
	}
}

// TestBackendFaultParity plants exactly one zero divisor at assorted
// positions (chunk boundaries included) and requires each backend's
// RunBatch to abort with the interpreter's fault on the interpreter's
// cycle.
func TestBackendFaultParity(t *testing.T) {
	src := `
void k(int a, int b, int* q) {
	*q = a / b;
}
`
	res, err := core.CompileSource(src, "k", core.Options{Optimize: true, PeriodNs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, zeroAt := range []int{0, 1, 37, 255, 256, 299} {
		iters := make([][]int64, 300)
		for i := range iters {
			iters[i] = []int64{int64(i + 1), int64(i%97 + 1)}
			if i == zeroAt {
				iters[i][1] = 0
			}
		}
		ref := dp.NewSim(res.Datapath)
		_, rerr := ref.RunBatch(iters)
		var rf *dp.FaultError
		if !errors.As(rerr, &rf) {
			t.Fatalf("zeroAt=%d: interp did not raise a FaultError: %v", zeroAt, rerr)
		}
		for _, b := range dp.Backends()[1:] {
			sim := dp.NewSimWith(res.Datapath, b)
			_, berr := sim.RunBatch(iters)
			var bf *dp.FaultError
			if !errors.As(berr, &bf) {
				t.Fatalf("zeroAt=%d [%v]: no FaultError: %v", zeroAt, b, berr)
			}
			if bf.Op != rf.Op || bf.Cycle != rf.Cycle {
				t.Fatalf("zeroAt=%d [%v]: fault op=%s cycle=%d, interp op=%s cycle=%d",
					zeroAt, b, bf.Op, bf.Cycle, rf.Op, rf.Cycle)
			}
			if sim.Cycle() != ref.Cycle() {
				t.Fatalf("zeroAt=%d [%v]: post-abort cycle %d, interp %d", zeroAt, b, sim.Cycle(), ref.Cycle())
			}
		}
	}
}

// TestMulAccClosedFormCone pins the tentpole: mul_acc's accumulate cone
// must be recognized in closed form (otherwise the cone backends
// silently degrade to the lane-serial path and the kernel keeps
// serializing).
func TestMulAccClosedFormCone(t *testing.T) {
	res, err := bench.MulAcc().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !dp.NewSimWith(res.Datapath, dp.BackendCone).HasClosedFormCone() {
		t.Fatal("mul_acc: feedback cone not recognized in closed form")
	}
	// A feedback-free kernel has no cone at all.
	res, err = bench.DCT().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if dp.NewSimWith(res.Datapath, dp.BackendCone).HasClosedFormCone() {
		t.Fatal("dct: unexpected closed-form cone on a feedback-free kernel")
	}
}

// TestBackendStepNZeroAllocs: the threaded batch steady state must not
// allocate — the lane kernels and their fixed-stride scratch are
// compiled and grown once.
func TestBackendStepNZeroAllocs(t *testing.T) {
	for _, k := range []bench.Kernel{bench.DCT(), bench.MulAcc()} {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, b := range dp.Backends()[1:] {
			sim := dp.NewSimWith(res.Datapath, b)
			const n = 64
			in := make([]int64, n*len(res.Datapath.Inputs))
			for i := range in {
				in[i] = int64(i%251 + 1)
			}
			if _, err := sim.StepN(in, n); err != nil {
				t.Fatalf("%s [%v]: %v", k.Name, b, err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := sim.StepN(in, n); err != nil {
					t.Fatalf("%s [%v]: %v", k.Name, b, err)
				}
				if _, err := sim.DrainN(8); err != nil {
					t.Fatalf("%s [%v]: %v", k.Name, b, err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s [%v]: StepN/DrainN steady state allocates %.1f allocs/op, want 0", k.Name, b, allocs)
			}
		}
	}
}

// TestParseBackend pins the flag surface.
func TestParseBackend(t *testing.T) {
	for _, b := range dp.Backends() {
		got, err := dp.ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := dp.ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
}
