//go:build !dpverify

package dp

// planVerifyHook is a no-op in default builds; `-tags dpverify` swaps
// in the verifying hook (verify_hook_on.go), so -race and soak CI runs
// statically check every plan they compile.
func planVerifyHook(p *simPlan, d *Datapath) {}
