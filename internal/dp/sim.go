package dp

import (
	"fmt"
	"math/bits"

	"roccc/internal/cc"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// Sim is a cycle-accurate simulator of a pipelined data path. One Step
// is one clock: a new iteration's inputs enter the pipeline every cycle
// (initiation interval 1, §4.2.3), and each op at stage s works on the
// iteration admitted s cycles earlier. Stage-crossing values are taken
// from pipeline-register history, which models the latches exactly: any
// path between two ops crosses the same number of latches.
//
// The simulator is compiled: NewSim lowers the data path once into an
// integer-indexed execution plan (dense operand descriptors, pre-resolved
// wrap masks, feedback-latch slots and one flat ring buffer holding every
// op's register history), so Step is a flat loop over slices with switch
// dispatch — no map lookups, no closures and zero heap allocations per
// cycle. RefSim keeps the direct, map-based §4.2.3 semantics; the two are
// checked bit-identical by differential tests.
type Sim struct {
	d *Datapath

	// Execution plan, fixed after NewSim.
	plan     []cop
	inSlots  []inSlot
	outSlots []outSlot
	fbVars   []*hir.Var

	// ring holds every op's output history: one rdepth-sized circular
	// region per op (region base = op index × rdepth). ring[base+head] is
	// the value computed this cycle, ring[base+((head+j)&rmask)] the value
	// computed j cycles earlier.
	ring  []int64
	rmask int
	head  int
	// validRing records, for each of the last rdepth admitted iterations,
	// whether it carried real data; bubbles do not commit feedback
	// latches. Indexed by cycle&rmask (bounded, unlike a grow-only log).
	validRing []bool

	// Feedback latches, dense (indexed like d.Feedbacks) plus staged
	// next-cycle values.
	state     []int64
	stagedVal []int64
	stagedSet []bool

	outBuf  []int64
	zeroBuf []int64
	cycle   int

	// State is a read-only view of the feedback latches keyed by state
	// variable, refreshed after every commit. The dense plan is
	// authoritative; mutating this map does not affect the simulation.
	State map[*hir.Var]int64
}

// cOperand is a pre-resolved instruction operand: either an immediate
// (imm, ring=false; unresolved registers become immediate zeros) or a
// read of the defining op's ring region at a fixed stage delta.
type cOperand struct {
	imm  int64
	base int32
	off  int32
	ring bool
}

// wrapSpec is a pre-compiled cc.IntType.Wrap: truncate to Bits and
// re-interpret by shifting through bit 63.
type wrapSpec struct {
	sh     uint8
	signed bool
}

func makeWrap(t cc.IntType) wrapSpec {
	sh := 0
	if t.Bits < 64 {
		sh = 64 - t.Bits
	}
	return wrapSpec{sh: uint8(sh), signed: t.Signed}
}

func (w wrapSpec) wrap(v int64) int64 {
	if w.signed {
		return v << w.sh >> w.sh
	}
	return int64(uint64(v) << w.sh >> w.sh)
}

// cop is one compiled data-path operation.
type cop struct {
	opc  vm.Opcode
	slot int32 // ring base of the op's own output region
	a    cOperand
	b    cOperand
	c    cOperand
	tw   wrapSpec // semantic result-type wrap (vm.EvalOp)
	hw   wrapSpec // inferred hardware-width wrap (§4.2.4)
	fb   int32    // feedback latch index for LPR/SNX
	// stage is the op's pipeline stage; SNX uses it to find which
	// admitted iteration currently occupies the stage.
	stage int32
	rom   *hir.Rom
	// SHR semantics, resolved from the left operand's type: logical
	// (mask the operand to shrMask first) vs arithmetic.
	shrLogical bool
	shrMask    uint64
}

// inSlot routes one data-path input port into the ring.
type inSlot struct {
	base int32
	w    wrapSpec
}

// outSlot reads one output port from the ring: the defining op's value
// delta cycles back, so all outputs of one iteration appear together at
// the pipeline exit.
type outSlot struct {
	base  int32
	delta int32
}

// NewSim compiles the data path into an execution plan, with feedback
// latches reset to their init values.
func NewSim(d *Datapath) *Sim {
	// Smallest power of two holding Stages+1 history entries per op.
	rdepth := 1 << bits.Len(uint(d.Stages))
	s := &Sim{
		d:         d,
		ring:      make([]int64, len(d.Ops)*rdepth),
		rmask:     rdepth - 1,
		validRing: make([]bool, rdepth),
		outBuf:    make([]int64, len(d.Outputs)),
		zeroBuf:   make([]int64, len(d.Inputs)),
		State:     map[*hir.Var]int64{},
	}

	opIndex := make(map[*Op]int, len(d.Ops))
	for i, op := range d.Ops {
		opIndex[op] = i
	}
	base := func(op *Op) int32 { return int32(opIndex[op] * rdepth) }

	fbIndex := map[*hir.Var]int32{}
	for i, fb := range d.Feedbacks {
		init := fb.State.Type.Wrap(fb.Init)
		s.state = append(s.state, init)
		s.stagedVal = append(s.stagedVal, 0)
		s.stagedSet = append(s.stagedSet, false)
		s.fbVars = append(s.fbVars, fb.State)
		s.State[fb.State] = init
		fbIndex[fb.State] = int32(i)
	}

	for _, p := range d.Inputs {
		s.inSlots = append(s.inSlots, inSlot{base: base(d.DefOf[p.Reg]), w: makeWrap(p.Var.Type)})
	}
	lat := d.Latency()
	for _, p := range d.Outputs {
		def := d.DefOf[p.Reg]
		s.outSlots = append(s.outSlots, outSlot{base: base(def), delta: int32(lat - def.Stage)})
	}

	for _, op := range d.Ops {
		if op.Node.Kind == InputNode {
			continue
		}
		operand := func(o vm.Operand) cOperand {
			if o.IsImm {
				return cOperand{imm: o.Imm}
			}
			def := d.DefOf[o.Reg]
			if def == nil {
				return cOperand{} // undefined register reads as zero
			}
			return cOperand{base: base(def), off: int32(op.Stage - def.Stage), ring: true}
		}
		c := cop{
			opc:   op.Instr.Op,
			slot:  base(op),
			tw:    makeWrap(op.Instr.Typ),
			hw:    makeWrap(op.HardwareType()),
			stage: int32(op.Stage),
			rom:   op.Instr.Rom,
			fb:    -1,
		}
		if op.Instr.State != nil {
			idx, ok := fbIndex[op.Instr.State]
			if !ok {
				// State variable without a detected feedback pair (e.g. a
				// write-only SNX that upstream passes did not eliminate):
				// give it its own latch slot, zero-initialized, so the op
				// behaves exactly like RefSim's map-keyed staging instead
				// of aliasing latch 0.
				idx = int32(len(s.state))
				fbIndex[op.Instr.State] = idx
				s.state = append(s.state, 0)
				s.stagedVal = append(s.stagedVal, 0)
				s.stagedSet = append(s.stagedSet, false)
				s.fbVars = append(s.fbVars, op.Instr.State)
			}
			c.fb = idx
		}
		if n := len(op.Instr.Srcs); n > 0 {
			c.a = operand(op.Instr.Srcs[0])
			if n > 1 {
				c.b = operand(op.Instr.Srcs[1])
			}
			if n > 2 {
				c.c = operand(op.Instr.Srcs[2])
			}
		}
		if op.Instr.Op == vm.SHR {
			ot := op.Instr.ShiftOperandType()
			if !ot.Signed {
				c.shrLogical = true
				c.shrMask = uint64(1)<<uint(ot.Bits) - 1
			}
		}
		s.plan = append(s.plan, c)
	}
	return s
}

// Cycle returns the number of Steps executed.
func (s *Sim) Cycle() int { return s.cycle }

// Latency returns the cycle count between feeding an iteration's inputs
// and reading its outputs: outputs fed at Step n are read from the
// return value of Step n+Latency.
func (s *Sim) Latency() int { return s.d.Latency() }

// Step advances one clock: inputs (one value per data-path input port)
// enter the pipeline, every stage computes, pipeline registers shift and
// feedback latches update. The returned slice holds the output-port
// values visible after this clock edge — they belong to the iteration
// admitted Latency() cycles earlier. The slice is reused between calls;
// copy it to retain values across Steps.
func (s *Sim) Step(inputs []int64) ([]int64, error) {
	return s.step(inputs, true)
}

// Drain advances one clock with a pipeline bubble: zero inputs enter and
// feedback latches are not updated by the bubble when it reaches the SNX
// stage. Used to flush the last real iterations out of the pipeline.
// Like Step, the returned slice is reused between calls.
func (s *Sim) Drain() ([]int64, error) {
	return s.step(s.zeroBuf, false)
}

// fetch reads one pre-resolved operand.
func (s *Sim) fetch(o *cOperand) int64 {
	if !o.ring {
		return o.imm
	}
	return s.ring[int(o.base)+((s.head+int(o.off))&s.rmask)]
}

// abort discards a failed cycle: the ring head is restored (every slot
// written during the aborted attempt is rewritten before it can be read
// once the next attempt rotates back onto it) and staged feedback
// writes are dropped, so an errored step leaves the pipeline exactly as
// it was before the call.
func (s *Sim) abort(prevHead int) {
	s.head = prevHead
	for i := range s.stagedSet {
		s.stagedSet[i] = false
	}
}

func (s *Sim) step(inputs []int64, valid bool) ([]int64, error) {
	if len(inputs) != len(s.inSlots) {
		return nil, fmt.Errorf("dp: sim: %d inputs, want %d", len(inputs), len(s.inSlots))
	}
	prevHead := s.head
	// Rotate the ring one cycle: head now addresses this cycle's slots,
	// and every prior value ages by one latch.
	s.head = (s.head - 1) & s.rmask
	head := s.head
	rmask := s.rmask
	ring := s.ring
	s.validRing[s.cycle&rmask] = valid
	// Input pseudo-ops take this cycle's fed values.
	for i := range s.inSlots {
		sl := &s.inSlots[i]
		ring[int(sl.base)+head] = sl.w.wrap(inputs[i])
	}
	staged := false
	for i := range s.plan {
		op := &s.plan[i]
		var v int64
		switch op.opc {
		case vm.LDC, vm.MOV, vm.CVT:
			v = op.tw.wrap(s.fetch(&op.a))
		case vm.ADD:
			v = op.tw.wrap(s.fetch(&op.a) + s.fetch(&op.b))
		case vm.SUB:
			v = op.tw.wrap(s.fetch(&op.a) - s.fetch(&op.b))
		case vm.MUL:
			v = op.tw.wrap(s.fetch(&op.a) * s.fetch(&op.b))
		case vm.DIV:
			b := s.fetch(&op.b)
			if b == 0 {
				s.abort(prevHead)
				return nil, fmt.Errorf("dp: sim: division by zero")
			}
			v = op.tw.wrap(s.fetch(&op.a) / b)
		case vm.REM:
			b := s.fetch(&op.b)
			if b == 0 {
				s.abort(prevHead)
				return nil, fmt.Errorf("dp: sim: modulo by zero")
			}
			v = op.tw.wrap(s.fetch(&op.a) % b)
		case vm.AND:
			v = op.tw.wrap(s.fetch(&op.a) & s.fetch(&op.b))
		case vm.IOR:
			v = op.tw.wrap(s.fetch(&op.a) | s.fetch(&op.b))
		case vm.XOR:
			v = op.tw.wrap(s.fetch(&op.a) ^ s.fetch(&op.b))
		case vm.SHL:
			v = op.tw.wrap(s.fetch(&op.a) << uint(s.fetch(&op.b)&63))
		case vm.SHR:
			a := s.fetch(&op.a)
			sh := uint(s.fetch(&op.b) & 63)
			if op.shrLogical {
				v = op.tw.wrap(int64((uint64(a) & op.shrMask) >> sh))
			} else {
				v = op.tw.wrap(a >> sh)
			}
		case vm.NEG:
			v = op.tw.wrap(-s.fetch(&op.a))
		case vm.NOT:
			v = op.tw.wrap(^s.fetch(&op.a))
		case vm.SEQ:
			v = boolBit(s.fetch(&op.a) == s.fetch(&op.b))
		case vm.SNE:
			v = boolBit(s.fetch(&op.a) != s.fetch(&op.b))
		case vm.SLT:
			v = boolBit(s.fetch(&op.a) < s.fetch(&op.b))
		case vm.SLE:
			v = boolBit(s.fetch(&op.a) <= s.fetch(&op.b))
		case vm.MUX:
			if s.fetch(&op.a) != 0 {
				v = op.tw.wrap(s.fetch(&op.b))
			} else {
				v = op.tw.wrap(s.fetch(&op.c))
			}
		case vm.LPR:
			// Feedback latches bypass hardware-width wrapping: the latch
			// is exactly as wide as the state variable.
			ring[int(op.slot)+head] = s.state[op.fb]
			continue
		case vm.SNX:
			// The iteration currently occupying this stage was admitted
			// op.stage cycles ago; bubbles do not write the latch.
			it := s.cycle - int(op.stage)
			if it >= 0 && s.validRing[it&rmask] {
				s.stagedVal[op.fb] = op.tw.wrap(s.fetch(&op.a))
				s.stagedSet[op.fb] = true
				staged = true
			}
			continue
		case vm.LUT:
			ix := s.fetch(&op.a)
			if ix < 0 || ix >= int64(op.rom.Size) {
				s.abort(prevHead)
				return nil, fmt.Errorf("dp: sim: LUT index %d out of range for %s", ix, op.rom.Name)
			}
			ring[int(op.slot)+head] = op.rom.Content[ix]
			continue
		default:
			s.abort(prevHead)
			return nil, fmt.Errorf("dp: sim: unsupported opcode %s", op.opc)
		}
		// The hardware signal is op.Width bits wide; wrap to the inferred
		// hardware type to catch width-inference bugs.
		ring[int(op.slot)+head] = op.hw.wrap(v)
	}
	// Clock edge: commit feedback latches.
	if staged {
		for i := range s.stagedSet {
			if s.stagedSet[i] {
				s.stagedSet[i] = false
				s.state[i] = s.stagedVal[i]
				s.State[s.fbVars[i]] = s.stagedVal[i]
			}
		}
	}
	s.cycle++
	// Output ports are aligned to the pipeline exit: a port whose
	// defining op sits in an earlier stage is delayed through alignment
	// registers so all outputs of one iteration appear together.
	for i := range s.outSlots {
		o := &s.outSlots[i]
		s.outBuf[i] = ring[int(o.base)+((head+int(o.delta))&rmask)]
	}
	return s.outBuf, nil
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run feeds a sequence of per-iteration input vectors through the
// pipeline (plus drain cycles) and returns one output vector per
// iteration, aligned with the inputs.
func (s *Sim) Run(iters [][]int64) ([][]int64, error) {
	if len(iters) == 0 {
		return nil, nil
	}
	lat := s.Latency()
	var outs [][]int64
	total := len(iters) + lat
	for c := 0; c < total; c++ {
		var (
			o   []int64
			err error
		)
		if c < len(iters) {
			o, err = s.Step(iters[c])
		} else {
			o, err = s.Drain()
		}
		if err != nil {
			return nil, err
		}
		if c >= lat {
			cp := make([]int64, len(o))
			copy(cp, o)
			outs = append(outs, cp)
		}
	}
	return outs, nil
}
