package dp

import (
	"fmt"
	"math/bits"
	"sync"

	"roccc/internal/cc"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// Sim is a cycle-accurate simulator of a pipelined data path. One Step
// is one clock: a new iteration's inputs enter the pipeline every cycle
// (initiation interval 1, §4.2.3), and each op at stage s works on the
// iteration admitted s cycles earlier. Stage-crossing values are taken
// from pipeline-register history, which models the latches exactly: any
// path between two ops crosses the same number of latches.
//
// The simulator is compiled: the data path is lowered once into an
// integer-indexed execution plan (dense operand descriptors, pre-resolved
// wrap masks, feedback-latch slots and one flat ring buffer holding every
// op's register history), so Step is a flat loop over slices with switch
// dispatch — no map lookups, no closures and zero heap allocations per
// cycle. The plan is cached on the Datapath itself: repeated NewSim
// calls over one data path (ablation/unroll sweeps, System reuse) share
// it and skip recompilation. RefSim keeps the direct, map-based §4.2.3
// semantics; the two are checked bit-identical by differential tests.
type Sim struct {
	d *Datapath
	p *simPlan
	// backend selects the dispatch machinery (backend.go): the
	// interpreter switch loop, the plan's compiled threaded code, or the
	// closed-form-cone hybrid. The compiled structures live on the shared
	// simPlan; the choice of whether to use them is per-Sim.
	backend Backend
	// stagedAny mirrors the interpreter loop's local staged flag for the
	// threaded step, whose per-op closures cannot share a stack local.
	stagedAny bool

	// ring holds every op's output history: one rdepth-sized circular
	// region per op (region base = op index × rdepth). ring[base+head] is
	// the value computed this cycle, ring[base+((head+j)&rmask)] the value
	// computed j cycles earlier.
	ring  []int64
	rmask int
	head  int
	// validRing records, for each of the last rdepth admitted iterations,
	// whether it carried real data; bubbles are poisoned: they do not
	// commit feedback latches and mask faulting ops. Indexed by
	// cycle&rmask (bounded, unlike a grow-only log).
	validRing []bool
	// stageValid[st] reports whether the iteration occupying stage st in
	// the current cycle carries real data; recomputed from validRing at
	// the top of every step.
	stageValid []bool

	// Feedback latches, dense (indexed like the plan's latch slots) plus
	// staged next-cycle values.
	state     []int64
	stagedVal []int64
	stagedSet []bool

	outBuf  []int64
	zeroBuf []int64
	cycle   int

	// Batch-path scratch (batch.go): structure-of-arrays lane values (one
	// flat region per op), per-lane valid bits, the flat output/input
	// buffers reused across StepN/DrainN/RunBatch calls, and the running
	// feedback state of the lane-serialized cone. All grow on first use
	// and are reused afterwards, so the batch steady state allocates
	// nothing.
	laneVals   []int64
	laneValid  []bool
	batchOut   []int64
	batchIn    []int64
	batchState []int64

	// State is a read-only view of the feedback latches keyed by state
	// variable, refreshed after every commit. The dense plan is
	// authoritative; mutating this map does not affect the simulation.
	State map[*hir.Var]int64
}

// simPlan is the compiled, immutable execution plan shared by every Sim
// over one Datapath. It carries no per-run state.
type simPlan struct {
	plan     []cop
	inSlots  []inSlot
	outSlots []outSlot
	fbVars   []*hir.Var
	fbInit   []int64
	// fbName indexes latch slots by state-variable name: the first latch
	// (in deterministic plan order: d.Feedbacks, then write-only SNX
	// latches in op order) with each name wins, so name collisions
	// resolve stably instead of by map iteration order.
	fbName map[string]int32
	rdepth int
	rmask  int
	stages int

	// Batch-path (StepN) tables. opShift turns a ring base back into an
	// op index (rdepth is a power of two); opStage is every op's pipeline
	// stage in d.Ops order (the plan's cops exclude input pseudo-ops, but
	// seeding in-flight iterations needs all of them); latency mirrors
	// d.Latency(). The cop list is partitioned for lane-parallel
	// execution: batchA ops do not depend on any feedback-latch read and
	// run op-major over all lanes at once; batchB is the feedback cone
	// (every LPR/SNX plus the ops between them) and serializes lane by
	// lane, because iteration i's latch read depends on iteration i-1's
	// latch write; batchC ops depend on latch reads but feed no latch
	// write, so they batch op-major again once the cone has run. Within
	// each class the plan's topological order is preserved.
	opShift uint
	opStage []int32
	nOps    int
	latency int
	batchA  []cop
	batchB  []cop
	batchC  []cop
	// ringNeed[idx] is the deepest read-back (in cycles) anything ever
	// performs on op idx's ring region: the max over consumer operand
	// stage deltas and output-port alignment delays. The batch path
	// seeds and commits only that much of each op's in-flight history —
	// for shallow data paths this cuts the per-chunk fixed cost from
	// nOps×(stages+rdepth) to roughly nOps×(2·ringNeed), which is what
	// makes small chunks (short system streaks) profitable. seeds and
	// commits are the compact worklists derived from it: only regions
	// somebody actually reads appear, so chunk setup/teardown skips
	// dead regions without a per-op branch.
	ringNeed []int32
	seeds    []ringEnt
	commits  []ringEnt

	// Lazily-compiled alternative backends, shared by every Sim over this
	// plan (backend_cone.go, backend_threaded.go): the recognized
	// closed-form feedback cone, and the plan lowered to threaded code.
	coneOnce   sync.Once
	cone       *coneSpec
	threadOnce sync.Once
	thread     *threadPlan
}

// ringEnt is one op region in the batch path's seed or commit worklist:
// the op index, its pipeline stage, and the read-back depth to move.
type ringEnt struct {
	idx, st, need int32
}

// cOperand is a pre-resolved instruction operand: either an immediate
// (imm, ring=false; unresolved registers become immediate zeros) or a
// read of the defining op's ring region at a fixed stage delta.
type cOperand struct {
	imm  int64
	base int32
	off  int32
	ring bool
}

// wrapSpec is a pre-compiled cc.IntType.Wrap: truncate to Bits and
// re-interpret by shifting through bit 63.
type wrapSpec struct {
	sh     uint8
	signed bool
}

func makeWrap(t cc.IntType) wrapSpec {
	sh := 0
	if t.Bits < 64 {
		sh = 64 - t.Bits
	}
	return wrapSpec{sh: uint8(sh), signed: t.Signed}
}

func (w wrapSpec) wrap(v int64) int64 {
	if w.signed {
		return v << w.sh >> w.sh
	}
	return int64(uint64(v) << w.sh >> w.sh)
}

// Wrap-pass modes for the batch path: after an op's raw values are
// computed for all lanes, one vectorized pass applies the same
// truncation Step applies per cycle. When the hardware width is no
// wider than the semantic type (the common case — width inference only
// narrows), hw.wrap(tw.wrap(v)) keeps exactly the hardware type's low
// bits, so the two wraps fuse into the hardware wrap alone; comparisons
// take only the hardware wrap by construction, and LUT reads none.
const (
	wrapNone   uint8 = iota // value is final as computed (LUT)
	wrapSingle              // one fused wrap (fw)
	wrapBoth                // semantic then hardware wrap, unfusable
)

// cop is one compiled data-path operation.
type cop struct {
	opc  vm.Opcode
	slot int32 // ring base of the op's own output region
	a    cOperand
	b    cOperand
	c    cOperand
	tw   wrapSpec // semantic result-type wrap (vm.EvalOp)
	hw   wrapSpec // inferred hardware-width wrap (§4.2.4)
	// Batch wrap pass (see the mode constants).
	wmode uint8
	fw    wrapSpec
	fb    int32 // feedback latch index for LPR/SNX
	// stage is the op's pipeline stage; it identifies which admitted
	// iteration the op is working on (valid or bubble) this cycle.
	stage int32
	rom   *hir.Rom
	// SHR semantics, resolved from the left operand's type: logical
	// (mask the operand to shrMask first) vs arithmetic.
	shrLogical bool
	shrMask    uint64
}

// inSlot routes one data-path input port into the ring.
type inSlot struct {
	base int32
	w    wrapSpec
}

// outSlot reads one output port from the ring: the defining op's value
// delta cycles back, so all outputs of one iteration appear together at
// the pipeline exit.
type outSlot struct {
	base  int32
	delta int32
}

// compileSimPlan lowers the data path into the integer-indexed execution
// plan. Called once per Datapath through Datapath.simPlanFor.
func compileSimPlan(d *Datapath) *simPlan {
	// Smallest power of two holding Stages+1 history entries per op.
	rdepth := 1 << bits.Len(uint(d.Stages))
	p := &simPlan{
		rdepth: rdepth,
		rmask:  rdepth - 1,
		stages: d.Stages,
		fbName: map[string]int32{},
	}

	opIndex := make(map[*Op]int, len(d.Ops))
	for i, op := range d.Ops {
		opIndex[op] = i
	}
	base := func(op *Op) int32 { return int32(opIndex[op] * rdepth) }

	fbIndex := map[*hir.Var]int32{}
	addLatch := func(v *hir.Var, init int64) int32 {
		idx := int32(len(p.fbVars))
		fbIndex[v] = idx
		p.fbVars = append(p.fbVars, v)
		p.fbInit = append(p.fbInit, init)
		if _, taken := p.fbName[v.Name]; !taken {
			p.fbName[v.Name] = idx
		}
		return idx
	}
	for _, fb := range d.Feedbacks {
		addLatch(fb.State, fb.State.Type.Wrap(fb.Init))
	}

	for _, port := range d.Inputs {
		p.inSlots = append(p.inSlots, inSlot{base: base(d.DefOf[port.Reg]), w: makeWrap(port.Var.Type)})
	}
	lat := d.Latency()
	for _, port := range d.Outputs {
		def := d.DefOf[port.Reg]
		p.outSlots = append(p.outSlots, outSlot{base: base(def), delta: int32(lat - def.Stage)})
	}

	for _, op := range d.Ops {
		if op.Node.Kind == InputNode {
			continue
		}
		operand := func(o vm.Operand) cOperand {
			if o.IsImm {
				return cOperand{imm: o.Imm}
			}
			def := d.DefOf[o.Reg]
			if def == nil {
				return cOperand{} // undefined register reads as zero
			}
			return cOperand{base: base(def), off: int32(op.Stage - def.Stage), ring: true}
		}
		c := cop{
			opc:   op.Instr.Op,
			slot:  base(op),
			tw:    makeWrap(op.Instr.Typ),
			hw:    makeWrap(op.HardwareType()),
			stage: int32(op.Stage),
			rom:   op.Instr.Rom,
			fb:    -1,
		}
		if op.Instr.State != nil {
			idx, ok := fbIndex[op.Instr.State]
			if !ok {
				// State variable without a detected feedback pair (e.g. a
				// write-only SNX that upstream passes did not eliminate):
				// give it its own latch slot, zero-initialized, so the op
				// behaves exactly like RefSim's map-keyed staging instead
				// of aliasing latch 0.
				idx = addLatch(op.Instr.State, 0)
			}
			c.fb = idx
		}
		if n := len(op.Instr.Srcs); n > 0 {
			c.a = operand(op.Instr.Srcs[0])
			if n > 1 {
				c.b = operand(op.Instr.Srcs[1])
			}
			if n > 2 {
				c.c = operand(op.Instr.Srcs[2])
			}
		}
		if op.Instr.Op == vm.SHR {
			ot := op.Instr.ShiftOperandType()
			if !ot.Signed {
				c.shrLogical = true
				c.shrMask = uint64(1)<<uint(ot.Bits) - 1
			}
		}
		switch {
		case c.opc == vm.LUT:
			c.wmode = wrapNone
		case c.opc == vm.SEQ || c.opc == vm.SNE || c.opc == vm.SLT || c.opc == vm.SLE:
			// Comparison results skip the semantic wrap (step applies only
			// the hardware wrap to boolBit).
			c.wmode, c.fw = wrapSingle, c.hw
		case c.hw.sh >= c.tw.sh:
			c.wmode, c.fw = wrapSingle, c.hw
		default:
			c.wmode = wrapBoth
		}
		if c.wmode == wrapSingle && c.fw.sh == 0 {
			c.wmode = wrapNone // 64-bit wrap is the identity
		}
		p.plan = append(p.plan, c)
	}

	p.opShift = uint(bits.TrailingZeros(uint(rdepth)))
	p.nOps = len(d.Ops)
	p.latency = d.Latency()
	p.opStage = make([]int32, len(d.Ops))
	for i, op := range d.Ops {
		p.opStage[i] = int32(op.Stage)
	}
	p.ringNeed = make([]int32, p.nOps)
	bump := func(base, delta int32) {
		if idx := int(base) >> p.opShift; delta > p.ringNeed[idx] {
			p.ringNeed[idx] = delta
		}
	}
	for i := range p.plan {
		c := &p.plan[i]
		for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
			if o.ring {
				bump(o.base, o.off)
			}
		}
	}
	for i := range p.outSlots {
		bump(p.outSlots[i].base, p.outSlots[i].delta)
	}
	// Compact worklists: an op region is seeded only if somebody reads
	// its in-flight prefix (pre-chunk iterations still in the pipe), and
	// committed only if somebody can read its history after the chunk.
	// SNX ops never produce ring values; an op whose region nobody reads
	// (ringNeed 0) leaves no trace either way — exactly as its stale
	// ring slots are unobservable in the serial core.
	snx := make([]bool, p.nOps)
	for i := range p.plan {
		if p.plan[i].opc == vm.SNX {
			snx[int(p.plan[i].slot)>>p.opShift] = true
		}
	}
	for idx := 0; idx < p.nOps; idx++ {
		need := p.ringNeed[idx]
		if need == 0 || snx[idx] {
			continue
		}
		e := ringEnt{idx: int32(idx), st: p.opStage[idx], need: need}
		if int(p.opStage[idx]) < p.stages {
			p.seeds = append(p.seeds, e)
		}
		p.commits = append(p.commits, e)
	}
	p.partitionBatch()
	planVerifyHook(p, d)
	return p
}

// partitionBatch splits the compiled plan into the three batch-execution
// classes (see the simPlan field docs): ops not reachable from a
// feedback-latch read (batchA), the feedback cone (batchB), and ops fed
// by latch reads that feed no latch write (batchC). Reachability runs
// over op indices — the plan is in topological order, so one forward
// pass marks everything downstream of an LPR and one backward pass marks
// everything upstream of an SNX.
func (p *simPlan) partitionBatch() {
	lprReach := make([]bool, p.nOps)
	snxReach := make([]bool, p.nOps)
	idxOf := func(base int32) int { return int(base) >> p.opShift }
	marked := func(reach []bool, o *cOperand) bool {
		return o.ring && reach[idxOf(o.base)]
	}
	for i := range p.plan {
		c := &p.plan[i]
		idx := idxOf(c.slot)
		if c.opc == vm.LPR || marked(lprReach, &c.a) || marked(lprReach, &c.b) || marked(lprReach, &c.c) {
			lprReach[idx] = true
		}
	}
	for i := len(p.plan) - 1; i >= 0; i-- {
		c := &p.plan[i]
		if c.opc != vm.SNX && !snxReach[idxOf(c.slot)] {
			continue
		}
		for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
			if o.ring {
				snxReach[idxOf(o.base)] = true
			}
		}
	}
	for _, c := range p.plan {
		idx := idxOf(c.slot)
		switch {
		case c.opc == vm.LPR || c.opc == vm.SNX || (lprReach[idx] && snxReach[idx]):
			p.batchB = append(p.batchB, c)
		case lprReach[idx]:
			p.batchC = append(p.batchC, c)
		default:
			p.batchA = append(p.batchA, c)
		}
	}
}

// NewSim instantiates a simulator over the data path's compiled
// execution plan (compiling it on first use, reusing it afterwards),
// with feedback latches reset to their init values.
func NewSim(d *Datapath) *Sim {
	p := d.simPlanFor()
	s := &Sim{
		d:          d,
		p:          p,
		ring:       make([]int64, len(d.Ops)*p.rdepth),
		rmask:      p.rmask,
		validRing:  make([]bool, p.rdepth),
		stageValid: make([]bool, p.stages+1),
		state:      make([]int64, len(p.fbInit)),
		stagedVal:  make([]int64, len(p.fbInit)),
		stagedSet:  make([]bool, len(p.fbInit)),
		outBuf:     make([]int64, len(d.Outputs)),
		zeroBuf:    make([]int64, len(d.Inputs)),
		batchState: make([]int64, len(p.fbInit)),
		State:      make(map[*hir.Var]int64, len(p.fbVars)),
	}
	s.Reset()
	return s
}

// NewSimWith builds a simulator over the data path that executes
// through the given backend. The compiled backend structures are built
// eagerly here (and cached on the shared plan), so construction — not
// the first Step — pays the lowering cost, and NewSimWith over a warm
// plan allocates no more than NewSim.
func NewSimWith(d *Datapath, b Backend) *Sim {
	s := NewSim(d)
	s.backend = b
	switch b {
	case BackendThreaded:
		s.p.threadFor()
	case BackendCone:
		s.p.coneFor()
	}
	return s
}

// Backend reports which execution backend this Sim dispatches through.
func (s *Sim) Backend() Backend { return s.backend }

// Reset returns the simulator to its power-on state — empty pipeline,
// cycle zero, feedback latches at their init values — without
// allocating, so one Sim can be reused across runs (System.Reset,
// sweeps).
func (s *Sim) Reset() {
	clear(s.ring)
	clear(s.validRing)
	clear(s.stageValid)
	clear(s.stagedSet)
	copy(s.state, s.p.fbInit)
	for i, v := range s.p.fbVars {
		s.State[v] = s.p.fbInit[i]
	}
	s.head = 0
	s.cycle = 0
	s.stagedAny = false
}

// Cycle returns the number of Steps executed.
func (s *Sim) Cycle() int { return s.cycle }

// Latency returns the cycle count between feeding an iteration's inputs
// and reading its outputs: outputs fed at Step n are read from the
// return value of Step n+Latency.
func (s *Sim) Latency() int { return s.d.Latency() }

// InWidth returns the number of input ports one Step consumes — the row
// stride of a flat StepN input region.
func (s *Sim) InWidth() int { return len(s.p.inSlots) }

// OutWidth returns the number of output ports one Step produces — the
// row stride of the flat row block StepN and DrainN return, so callers
// can slice per-cycle output windows out of it without copying.
func (s *Sim) OutWidth() int { return len(s.p.outSlots) }

// FeedbackByName returns the current value of the feedback latch whose
// state variable has the given name. The name→latch mapping is built
// once at plan compile time (first latch in plan order wins on name
// collisions), so the lookup is O(1) and deterministic — unlike scanning
// the State map, whose iteration order is random.
func (s *Sim) FeedbackByName(name string) (int64, bool) {
	idx, ok := s.p.fbName[name]
	if !ok {
		return 0, false
	}
	return s.state[idx], true
}

// Step advances one clock: inputs (one value per data-path input port)
// enter the pipeline, every stage computes, pipeline registers shift and
// feedback latches update. The returned slice holds the output-port
// values visible after this clock edge — they belong to the iteration
// admitted Latency() cycles earlier. The slice is reused between calls;
// copy it to retain values across Steps.
//
//roccc:hotpath
func (s *Sim) Step(inputs []int64) ([]int64, error) {
	return s.step(inputs, true)
}

// Drain advances one clock with a pipeline bubble: zero inputs enter,
// and the bubble carries a poison bit down the pipeline. A stage
// occupied by a bubble (or by nothing, before the first admission) is
// poisoned: its ops cannot fault — division or modulo by zero and LUT
// index overflow are masked to a zero result instead of trapping, and
// shifts are width-masked as always — and it never commits feedback
// latches, exactly as real hardware ignores bubble lanes while flushing
// (Fig. 2 drain). A fault is raised only when the stage's occupant is a
// valid iteration. Like Step, the returned slice is reused between
// calls.
//
//roccc:hotpath
func (s *Sim) Drain() ([]int64, error) {
	return s.step(s.zeroBuf, false)
}

// fetch reads one pre-resolved operand.
//
//roccc:hotpath
func (s *Sim) fetch(o *cOperand) int64 {
	if !o.ring {
		return o.imm
	}
	return s.ring[int(o.base)+((s.head+int(o.off))&s.rmask)]
}

// abort discards a failed cycle: the ring head is restored (every slot
// written during the aborted attempt is rewritten before it can be read
// once the next attempt rotates back onto it) and staged feedback
// writes are dropped, so an errored step leaves the pipeline exactly as
// it was before the call.
//
//roccc:hotpath
func (s *Sim) abort(prevHead int) {
	s.head = prevHead
	for i := range s.stagedSet {
		s.stagedSet[i] = false
	}
}

// step advances one clock through the Sim's selected backend. The
// threaded backend runs the plan's compiled closure array; everything
// else (including BackendCone, whose specialization only concerns the
// batch path) takes the interpreter loop.
//
//roccc:hotpath
func (s *Sim) step(inputs []int64, valid bool) ([]int64, error) {
	if s.backend == BackendThreaded {
		return s.stepThreaded(inputs, valid)
	}
	return s.stepInterp(inputs, valid)
}

//roccc:hotpath
func (s *Sim) stepInterp(inputs []int64, valid bool) ([]int64, error) {
	if len(inputs) != len(s.p.inSlots) {
		return nil, fmt.Errorf("dp: sim: %d inputs, want %d", len(inputs), len(s.p.inSlots))
	}
	prevHead := s.head
	// Rotate the ring one cycle: head now addresses this cycle's slots,
	// and every prior value ages by one latch.
	s.head = (s.head - 1) & s.rmask
	head := s.head
	rmask := s.rmask
	ring := s.ring
	s.validRing[s.cycle&rmask] = valid
	// Poison propagation: the iteration occupying stage st this cycle was
	// admitted st cycles ago; a stage fed by a bubble (or by nothing yet)
	// is poisoned for the whole cycle.
	stageValid := s.stageValid
	for st := range stageValid {
		it := s.cycle - st
		stageValid[st] = it >= 0 && s.validRing[it&rmask]
	}
	// Input pseudo-ops take this cycle's fed values.
	inSlots := s.p.inSlots
	for i := range inSlots {
		sl := &inSlots[i]
		ring[int(sl.base)+head] = sl.w.wrap(inputs[i])
	}
	staged := false
	plan := s.p.plan
	for i := range plan {
		op := &plan[i]
		var v int64
		switch op.opc {
		case vm.LDC, vm.MOV, vm.CVT:
			v = op.tw.wrap(s.fetch(&op.a))
		case vm.ADD:
			v = op.tw.wrap(s.fetch(&op.a) + s.fetch(&op.b))
		case vm.SUB:
			v = op.tw.wrap(s.fetch(&op.a) - s.fetch(&op.b))
		case vm.MUL:
			v = op.tw.wrap(s.fetch(&op.a) * s.fetch(&op.b))
		case vm.DIV:
			b := s.fetch(&op.b)
			if b == 0 {
				if !stageValid[op.stage] {
					break // poisoned lane: bubble masks the fault
				}
				s.abort(prevHead)
				return nil, faultErr(FaultDiv, s.cycle, "dp: sim: division by zero on a valid iteration (cycle %d)", s.cycle)
			}
			v = op.tw.wrap(s.fetch(&op.a) / b)
		case vm.REM:
			b := s.fetch(&op.b)
			if b == 0 {
				if !stageValid[op.stage] {
					break // poisoned lane: bubble masks the fault
				}
				s.abort(prevHead)
				return nil, faultErr(FaultRem, s.cycle, "dp: sim: modulo by zero on a valid iteration (cycle %d)", s.cycle)
			}
			v = op.tw.wrap(s.fetch(&op.a) % b)
		case vm.AND:
			v = op.tw.wrap(s.fetch(&op.a) & s.fetch(&op.b))
		case vm.IOR:
			v = op.tw.wrap(s.fetch(&op.a) | s.fetch(&op.b))
		case vm.XOR:
			v = op.tw.wrap(s.fetch(&op.a) ^ s.fetch(&op.b))
		case vm.SHL:
			v = op.tw.wrap(s.fetch(&op.a) << uint(s.fetch(&op.b)&63))
		case vm.SHR:
			a := s.fetch(&op.a)
			sh := uint(s.fetch(&op.b) & 63)
			if op.shrLogical {
				v = op.tw.wrap(int64((uint64(a) & op.shrMask) >> sh))
			} else {
				v = op.tw.wrap(a >> sh)
			}
		case vm.NEG:
			v = op.tw.wrap(-s.fetch(&op.a))
		case vm.NOT:
			v = op.tw.wrap(^s.fetch(&op.a))
		case vm.SEQ:
			v = boolBit(s.fetch(&op.a) == s.fetch(&op.b))
		case vm.SNE:
			v = boolBit(s.fetch(&op.a) != s.fetch(&op.b))
		case vm.SLT:
			v = boolBit(s.fetch(&op.a) < s.fetch(&op.b))
		case vm.SLE:
			v = boolBit(s.fetch(&op.a) <= s.fetch(&op.b))
		case vm.MUX:
			if s.fetch(&op.a) != 0 {
				v = op.tw.wrap(s.fetch(&op.b))
			} else {
				v = op.tw.wrap(s.fetch(&op.c))
			}
		case vm.LPR:
			// Feedback latches bypass hardware-width wrapping: the latch
			// is exactly as wide as the state variable.
			ring[int(op.slot)+head] = s.state[op.fb]
			continue
		case vm.SNX:
			// Only the valid iteration occupying this stage writes the
			// latch; poisoned bubbles never commit.
			if stageValid[op.stage] {
				s.stagedVal[op.fb] = op.tw.wrap(s.fetch(&op.a))
				s.stagedSet[op.fb] = true
				staged = true
			}
			continue
		case vm.LUT:
			ix := s.fetch(&op.a)
			if ix < 0 || ix >= int64(op.rom.Size) {
				if !stageValid[op.stage] {
					ring[int(op.slot)+head] = 0 // poisoned lane: masked
					continue
				}
				s.abort(prevHead)
				return nil, faultErr(FaultLUT, s.cycle, "dp: sim: LUT index %d out of range for %s (cycle %d)", ix, op.rom.Name, s.cycle)
			}
			ring[int(op.slot)+head] = op.rom.Content[ix]
			continue
		default:
			s.abort(prevHead)
			return nil, fmt.Errorf("dp: sim: unsupported opcode %s", op.opc)
		}
		// The hardware signal is op.Width bits wide; wrap to the inferred
		// hardware type to catch width-inference bugs.
		ring[int(op.slot)+head] = op.hw.wrap(v)
	}
	// Clock edge: commit feedback latches.
	if staged {
		for i := range s.stagedSet {
			if s.stagedSet[i] {
				s.stagedSet[i] = false
				s.state[i] = s.stagedVal[i]
				s.State[s.p.fbVars[i]] = s.stagedVal[i]
			}
		}
	}
	s.cycle++
	// Output ports are aligned to the pipeline exit: a port whose
	// defining op sits in an earlier stage is delayed through alignment
	// registers so all outputs of one iteration appear together.
	outSlots := s.p.outSlots
	for i := range outSlots {
		o := &outSlots[i]
		s.outBuf[i] = ring[int(o.base)+((head+int(o.delta))&rmask)]
	}
	return s.outBuf, nil
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run feeds a sequence of per-iteration input vectors through the
// pipeline (plus drain cycles) and returns one output vector per
// iteration, aligned with the inputs. The result rows share one flat
// backing array sized up front (two allocations per call, however long
// the run); drain cycles reuse the simulator's zero-input scratch, so
// Run performs no per-iteration allocation. RunBatch (batch.go) is the
// batched equivalent executing many iterations per dispatch.
func (s *Sim) Run(iters [][]int64) ([][]int64, error) {
	if len(iters) == 0 {
		return nil, nil
	}
	lat := s.Latency()
	outW := len(s.p.outSlots)
	outs := make([][]int64, 0, len(iters))
	backing := make([]int64, len(iters)*outW)
	total := len(iters) + lat
	for c := 0; c < total; c++ {
		var (
			o   []int64
			err error
		)
		if c < len(iters) {
			o, err = s.Step(iters[c])
		} else {
			o, err = s.Drain()
		}
		if err != nil {
			return nil, err
		}
		if c >= lat {
			row := backing[len(outs)*outW : (len(outs)+1)*outW]
			copy(row, o)
			outs = append(outs, row)
		}
	}
	return outs, nil
}
