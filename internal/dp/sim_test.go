package dp_test

import (
	"math/rand"
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// sim_test.go pins the compiled simulator (dp.Sim) to the map-based
// reference implementation (dp.RefSim): both are stepped in lockstep —
// including interleaved Drain bubbles and feedback kernels — and every
// output of every cycle must be bit-identical, as must the final
// feedback-latch state. It also gates the performance contract: Step
// must not allocate in steady state, even over ~1M cycles (the seed's
// grow-only validLog leaked one bool per cycle).

// lockstep drives both simulators through the same schedule of Step and
// Drain calls and compares every visible output.
func lockstep(t *testing.T, d *dp.Datapath, name string, vecs [][]int64, drainEvery int) {
	t.Helper()
	fast := dp.NewSim(d)
	ref := dp.NewRefSim(d)
	if fast.Latency() != ref.Latency() {
		t.Fatalf("%s: latency %d != reference %d", name, fast.Latency(), ref.Latency())
	}
	cycle := 0
	check := func(fo, ro []int64, ferr, rerr error, what string) {
		if (ferr != nil) != (rerr != nil) {
			t.Fatalf("%s: cycle %d (%s): error mismatch: fast %v, ref %v", name, cycle, what, ferr, rerr)
		}
		if ferr != nil {
			return
		}
		for i := range ro {
			if fo[i] != ro[i] {
				t.Fatalf("%s: cycle %d (%s): output %d: fast %d != ref %d",
					name, cycle, what, i, fo[i], ro[i])
			}
		}
	}
	for _, in := range vecs {
		if drainEvery > 0 && cycle%drainEvery == drainEvery-1 {
			fo, ferr := fast.Drain()
			ro, rerr := ref.Drain()
			check(fo, ro, ferr, rerr, "drain")
			cycle++
		}
		fo, ferr := fast.Step(in)
		ro, rerr := ref.Step(in)
		check(fo, ro, ferr, rerr, "step")
		cycle++
	}
	// Flush the pipeline so every admitted iteration is observed.
	for i := 0; i <= d.Stages+1; i++ {
		fo, ferr := fast.Drain()
		ro, rerr := ref.Drain()
		check(fo, ro, ferr, rerr, "flush")
		cycle++
	}
	for v, rv := range ref.State {
		if fv, ok := fast.State[v]; !ok || fv != rv {
			t.Fatalf("%s: feedback %s: fast %d != ref %d", name, v.Name, fast.State[v], rv)
		}
	}
}

// randomVectors builds per-port random input vectors sized to each
// port's declared type.
func randomVectors(res *core.Result, n int, rng *rand.Rand) [][]int64 {
	vecs := make([][]int64, n)
	for i := range vecs {
		in := make([]int64, len(res.Datapath.Inputs))
		for j, p := range res.Datapath.Inputs {
			span := p.Var.Type.MaxVal() - p.Var.Type.MinVal() + 1
			if span <= 0 { // 64-bit types: any value wraps
				in[j] = rng.Int63()
			} else {
				in[j] = p.Var.Type.MinVal() + rng.Int63n(span)
			}
		}
		vecs[i] = in
	}
	return vecs
}

// TestDifferentialBenchKernels checks fast-vs-reference bit identity on
// every Table 1 kernel, with and without interleaved pipeline bubbles.
func TestDifferentialBenchKernels(t *testing.T) {
	for _, k := range bench.All() {
		t.Run(k.Name, func(t *testing.T) {
			res, err := k.Compile()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(k.Name))))
			vecs := randomVectors(res, 64, rng)
			lockstep(t, res.Datapath, k.Name, vecs, 0)
			lockstep(t, res.Datapath, k.Name+"/bubbles", vecs, 3)
		})
	}
}

// TestDifferentialFeedback pins the SNX/LPR latch path (Fig. 7): the
// accumulator's feedback must commit identically through real steps and
// be held identically across bubbles.
func TestDifferentialFeedback(t *testing.T) {
	src := `
int32 acc;
void accum(int16 x) {
	acc = acc + x;
}
`
	res, err := core.CompileSource(src, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datapath.Feedbacks) != 1 {
		t.Fatalf("feedbacks = %d, want 1", len(res.Datapath.Feedbacks))
	}
	rng := rand.New(rand.NewSource(7))
	vecs := randomVectors(res, 200, rng)
	lockstep(t, res.Datapath, "accum", vecs, 0)
	lockstep(t, res.Datapath, "accum/bubbles", vecs, 2)
}

// TestStepZeroAllocs is the allocation gate: once the execution plan is
// compiled, steady-state Step and Drain must not allocate at all. Run
// over ~1M cycles this doubles as the regression test for the seed's
// unbounded validLog: a grow-only log would show amortized appends here.
func TestStepZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-cycle allocation gate skipped in -short mode")
	}
	for _, name := range []string{"dct", "mul_acc"} {
		var k bench.Kernel
		for _, cand := range bench.All() {
			if cand.Name == name {
				k = cand
			}
		}
		res, err := k.Compile()
		if err != nil {
			t.Fatal(err)
		}
		sim := dp.NewSim(res.Datapath)
		in := make([]int64, len(res.Datapath.Inputs))
		for i := range in {
			in[i] = int64(i%13) - 6
		}
		// Warm the pipeline past its depth so every path is exercised.
		for i := 0; i < res.Datapath.Stages+2; i++ {
			if _, err := sim.Step(in); err != nil {
				t.Fatal(err)
			}
		}
		const cycles = 1_000_000
		steps := testing.AllocsPerRun(cycles/2, func() {
			if _, err := sim.Step(in); err != nil {
				t.Fatal(err)
			}
		})
		drains := testing.AllocsPerRun(cycles/2, func() {
			if _, err := sim.Drain(); err != nil {
				t.Fatal(err)
			}
		})
		if steps != 0 {
			t.Errorf("%s: Step allocates %.2f objects/cycle in steady state, want 0", name, steps)
		}
		if drains != 0 {
			t.Errorf("%s: Drain allocates %.2f objects/cycle in steady state, want 0", name, drains)
		}
	}
}

// TestDifferentialAfterError pins the discard-on-error semantics: a
// cycle that faults (division by zero) must leave both simulators'
// pipeline state untouched, so stepping on afterwards stays
// bit-identical — the aborted cycle never happened.
func TestDifferentialAfterError(t *testing.T) {
	src := `
void divide(int16 a, int16 b, int16* y) {
	*y = a / b;
}
`
	res, err := core.CompileSource(src, "divide", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast := dp.NewSim(res.Datapath)
	ref := dp.NewRefSim(res.Datapath)
	step := func(in []int64, wantErr bool) {
		t.Helper()
		fo, ferr := fast.Step(in)
		ro, rerr := ref.Step(in)
		if (ferr != nil) != wantErr || (rerr != nil) != wantErr {
			t.Fatalf("Step(%v): fast err %v, ref err %v, want error %v", in, ferr, rerr, wantErr)
		}
		if wantErr {
			return
		}
		for i := range ro {
			if fo[i] != ro[i] {
				t.Fatalf("Step(%v): output %d: fast %d != ref %d", in, i, fo[i], ro[i])
			}
		}
	}
	step([]int64{100, 2}, false)
	step([]int64{50, 0}, true) // divide by zero: cycle discarded
	for i := int64(1); i < 40; i++ {
		step([]int64{100 + i, i}, false)
	}
	if fast.Cycle() != ref.Cycle() {
		t.Fatalf("cycle count: fast %d != ref %d", fast.Cycle(), ref.Cycle())
	}
}

// TestDrainPoisonMasksDivide pins the bubble/poison semantics on a
// divider: drain bubbles feed the divider a zero divisor, which the
// seed trapped on; poisoned lanes must mask the fault in both
// simulators, bit-identically, while a divide-by-zero on a valid
// iteration still errors in both.
func TestDrainPoisonMasksDivide(t *testing.T) {
	src := `
void divmod(int16 a, int16 b, int16* q, int16* r) {
	*q = a / b;
	*r = a % b;
}
`
	res, err := core.CompileSource(src, "divmod", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Valid iterations with nonzero divisors, bubbles interleaved every
	// other cycle: every bubble pushes a zero divisor down the pipe.
	rng := rand.New(rand.NewSource(11))
	vecs := make([][]int64, 64)
	for i := range vecs {
		vecs[i] = []int64{rng.Int63n(4096) - 2048, rng.Int63n(200) + 1}
	}
	lockstep(t, res.Datapath, "divmod/bubbles", vecs, 2)

	// A zero divisor on a valid iteration is a genuine fault in both.
	fast := dp.NewSim(res.Datapath)
	ref := dp.NewRefSim(res.Datapath)
	if _, err := fast.Step([]int64{7, 0}); err == nil {
		t.Error("fast: valid divide by zero did not fault")
	}
	if _, err := ref.Step([]int64{7, 0}); err == nil {
		t.Error("ref: valid divide by zero did not fault")
	}
	// The faulted cycle was discarded in both: draining from here must
	// stay bit-identical (and must not fault — the pipeline only holds
	// bubbles).
	for i := 0; i < res.Datapath.Stages+2; i++ {
		fo, ferr := fast.Drain()
		ro, rerr := ref.Drain()
		if ferr != nil || rerr != nil {
			t.Fatalf("drain after fault: fast %v, ref %v", ferr, rerr)
		}
		for j := range ro {
			if fo[j] != ro[j] {
				t.Fatalf("drain %d output %d: fast %d != ref %d", i, j, fo[j], ro[j])
			}
		}
	}
}

// TestSimResetReuse pins Sim.Reset: after a reset the simulator must be
// indistinguishable from a freshly built one — same outputs on the same
// schedule, feedback latches back at their init values — without
// recompiling the plan.
func TestSimResetReuse(t *testing.T) {
	src := `
int32 acc;
void accum(int16 x) {
	acc = acc + x;
}
`
	res, err := core.CompileSource(src, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	vecs := randomVectors(res, 50, rng)
	sim := dp.NewSim(res.Datapath)
	run := func() ([][]int64, int64) {
		outs, err := sim.Run(vecs)
		if err != nil {
			t.Fatal(err)
		}
		sum, ok := sim.FeedbackByName("acc")
		if !ok {
			t.Fatal("no feedback latch named acc")
		}
		return outs, sum
	}
	first, firstSum := run()
	sim.Reset()
	if v, _ := sim.FeedbackByName("acc"); v != 0 {
		t.Fatalf("acc after Reset = %d, want init 0", v)
	}
	if sim.Cycle() != 0 {
		t.Fatalf("cycle after Reset = %d", sim.Cycle())
	}
	second, secondSum := run()
	if firstSum != secondSum {
		t.Fatalf("feedback after rerun: %d != %d", secondSum, firstSum)
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("rerun output %d/%d: %d != %d", i, j, second[i][j], first[i][j])
			}
		}
	}
}

// TestFeedbackByName pins the O(1) name→latch index: it must agree with
// the State map and reject unknown names.
func TestFeedbackByName(t *testing.T) {
	src := `
int32 acc;
void accum(int16 x) {
	acc = acc + x;
}
`
	res, err := core.CompileSource(src, "accum", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := dp.NewSim(res.Datapath)
	in := []int64{5}
	for i := 0; i < res.Datapath.Stages+4; i++ {
		if _, err := sim.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := sim.FeedbackByName("acc")
	if !ok {
		t.Fatal("acc not found")
	}
	want := sim.State[res.Datapath.Feedbacks[0].State]
	if got != want {
		t.Fatalf("FeedbackByName = %d, State map = %d", got, want)
	}
	if _, ok := sim.FeedbackByName("no_such_latch"); ok {
		t.Error("unknown latch name reported found")
	}
}

// TestRunMatchesReference keeps the batch API pinned too: Sim.Run and
// RefSim.Run agree on the FIR kernel.
func TestRunMatchesReference(t *testing.T) {
	k := bench.FIR()
	res, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vecs := randomVectors(res, 40, rng)
	fast, err := dp.NewSim(res.Datapath).Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dp.NewRefSim(res.Datapath).Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(ref) {
		t.Fatalf("iterations: fast %d != ref %d", len(fast), len(ref))
	}
	for i := range ref {
		for j := range ref[i] {
			if fast[i][j] != ref[i][j] {
				t.Fatalf("iteration %d output %d: fast %d != ref %d", i, j, fast[i][j], ref[i][j])
			}
		}
	}
}
