package dp_test

import (
	"math/rand"
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// batch_test.go pins the lane-parallel batch path (StepN/DrainN/
// RunBatch) bit-identical to the serial core: same outputs on every
// cycle, same faults on the same cycle, same feedback state — across
// the Table 1 kernels (including feedback kernels), fuzzed kernels,
// random bubble schedules, and divisor-zero iterations.

// stepSerial advances the serial reference by n valid cycles with the
// given flat inputs, returning the concatenated output rows (or the
// error Step raised, with prior was-successful rows discarded like
// StepN discards them).
func stepSerial(s *dp.Sim, inputs []int64, n, inW, outW int, out []int64) error {
	for c := 0; c < n; c++ {
		o, err := s.Step(inputs[c*inW : (c+1)*inW])
		if err != nil {
			return err
		}
		copy(out[c*outW:(c+1)*outW], o)
	}
	return nil
}

func drainSerial(s *dp.Sim, n, outW int, out []int64) error {
	for c := 0; c < n; c++ {
		o, err := s.Drain()
		if err != nil {
			return err
		}
		copy(out[c*outW:(c+1)*outW], o)
	}
	return nil
}

// diffSchedule drives one batch sim and one serial sim through the same
// random schedule of valid runs and bubble runs (chunk sizes 1..40, so
// the serial shortcut, a single lane chunk and multi-chunk splits are
// all exercised) and requires identical outputs, errors, cycle counts
// and feedback state.
func diffSchedule(t *testing.T, name string, d *dp.Datapath, rng *rand.Rand, zeroInputs bool, cycles int) {
	t.Helper()
	bat := dp.NewSim(d)
	ref := dp.NewSim(d)
	inW := len(d.Inputs)
	outW := len(d.Outputs)
	maxChunk := 40
	in := make([]int64, maxChunk*inW)
	bOut := make([]int64, maxChunk*outW)
	rOut := make([]int64, maxChunk*outW)
	for done := 0; done < cycles; {
		n := 1 + rng.Intn(maxChunk)
		valid := rng.Intn(3) != 0
		var bErr, rErr error
		if valid {
			for j := 0; j < n*inW; j++ {
				if zeroInputs && rng.Intn(6) == 0 {
					in[j] = 0
				} else {
					in[j] = rng.Int63n(1<<12) - 1<<11
				}
			}
			var o []int64
			o, bErr = bat.StepN(in[:n*inW], n)
			if bErr == nil {
				copy(bOut, o)
			}
			rErr = stepSerial(ref, in, n, inW, outW, rOut)
		} else {
			var o []int64
			o, bErr = bat.DrainN(n)
			if bErr == nil {
				copy(bOut, o)
			}
			rErr = drainSerial(ref, n, outW, rOut)
		}
		if (bErr != nil) != (rErr != nil) {
			t.Fatalf("%s: error mismatch after %d cycles (n=%d valid=%v): batch %v, serial %v",
				name, done, n, valid, bErr, rErr)
		}
		if bErr != nil {
			// Both faulted: the abort must land on the same cycle and
			// leave identical latch state; stop the schedule here.
			break
		}
		for j := 0; j < n*outW; j++ {
			if bOut[j] != rOut[j] {
				t.Fatalf("%s: output mismatch at chunk cycle %d port %d (batch cycles %d..%d, valid=%v): batch %d, serial %d",
					name, j/outW, j%outW, done, done+n-1, valid, bOut[j], rOut[j])
			}
		}
		done += n
	}
	if bat.Cycle() != ref.Cycle() {
		t.Fatalf("%s: cycle count: batch %d, serial %d", name, bat.Cycle(), ref.Cycle())
	}
	for v, rv := range ref.State {
		if bv, ok := bat.State[v]; !ok || bv != rv {
			t.Fatalf("%s: feedback %s: batch %d, serial %d", name, v.Name, bat.State[v], rv)
		}
	}
}

// TestStepNDifferentialBenchKernels runs every Table 1 kernel —
// including the feedback kernels, whose lanes serialize through the
// latch cone — through random batched schedules against the serial
// core.
func TestStepNDifferentialBenchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for _, k := range bench.All() {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		diffSchedule(t, k.Name, res.Datapath, rng, false, 700)
	}
}

// TestStepNDifferentialFuzz extends the schedule differential to fuzzed
// kernels, rotating through division-by-input kernels with nonzero
// divisors (bubbles must mask the zero the drain pushes through the
// divider), division kernels with occasional zero divisors (a valid
// zero divisor must fault identically in both paths), and division-free
// kernels.
func TestStepNDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const kernels = 24
	for ki := 0; ki < kernels; ki++ {
		group := ki % 3
		src, _ := generateKernelDiv(rng, 2+rng.Intn(3), 3+rng.Intn(4), 1+rng.Intn(2), group != 2)
		res, err := core.CompileSource(src, "k", core.Options{
			Optimize: ki%2 == 0,
			PeriodNs: []float64{2.5, 5, 1000}[ki%3],
		})
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", ki, err, src)
		}
		// Group 0 feeds only nonzero magnitudes so valid iterations never
		// fault; group 1 feeds occasional zeros so they do.
		if group == 0 {
			diffScheduleNonzero(t, src, res.Datapath, rng, 400)
		} else {
			diffSchedule(t, src, res.Datapath, rng, true, 400)
		}
	}
}

// diffScheduleNonzero is diffSchedule with strictly nonzero inputs
// (divide-by-input kernels that must complete fault-free).
func diffScheduleNonzero(t *testing.T, name string, d *dp.Datapath, rng *rand.Rand, cycles int) {
	t.Helper()
	bat := dp.NewSim(d)
	ref := dp.NewSim(d)
	inW := len(d.Inputs)
	outW := len(d.Outputs)
	maxChunk := 40
	in := make([]int64, maxChunk*inW)
	bOut := make([]int64, maxChunk*outW)
	rOut := make([]int64, maxChunk*outW)
	for done := 0; done < cycles; {
		n := 1 + rng.Intn(maxChunk)
		valid := rng.Intn(3) != 0
		var bErr, rErr error
		if valid {
			for j := 0; j < n*inW; j++ {
				in[j] = 1 + rng.Int63n(1<<11)
				if rng.Intn(2) == 0 {
					in[j] = -in[j]
				}
			}
			var o []int64
			o, bErr = bat.StepN(in[:n*inW], n)
			if bErr == nil {
				copy(bOut, o)
			}
			rErr = stepSerial(ref, in, n, inW, outW, rOut)
		} else {
			var o []int64
			o, bErr = bat.DrainN(n)
			if bErr == nil {
				copy(bOut, o)
			}
			rErr = drainSerial(ref, n, outW, rOut)
		}
		if bErr != nil || rErr != nil {
			t.Fatalf("%s: unexpected fault (batch %v, serial %v): bubbles or nonzero iterations trapped", name, bErr, rErr)
		}
		for j := 0; j < n*outW; j++ {
			if bOut[j] != rOut[j] {
				t.Fatalf("%s: output mismatch at flat index %d: batch %d, serial %d", name, j, bOut[j], rOut[j])
			}
		}
		done += n
	}
	if bat.Cycle() != ref.Cycle() {
		t.Fatalf("%s: cycle count: batch %d, serial %d", name, bat.Cycle(), ref.Cycle())
	}
}

// TestRunBatchMatchesRun pins RunBatch bit-identical to Run over the
// Table 1 kernels on random inputs.
func TestRunBatchMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range bench.All() {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		iters := make([][]int64, 300)
		for i := range iters {
			row := make([]int64, len(res.Datapath.Inputs))
			for j := range row {
				row[j] = rng.Int63n(1 << 12)
			}
			iters[i] = row
		}
		want, err := dp.NewSim(res.Datapath).Run(iters)
		if err != nil {
			t.Fatalf("%s: Run: %v", k.Name, err)
		}
		got, err := dp.NewSim(res.Datapath).RunBatch(iters)
		if err != nil {
			t.Fatalf("%s: RunBatch: %v", k.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: RunBatch returned %d rows, Run %d", k.Name, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: iteration %d output %d: RunBatch %d, Run %d",
						k.Name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestRunBatchFaultParity: a divide kernel with exactly one zero
// divisor must fault in both paths on the same cycle index and leave
// identical cycle counts (the aborted cycle is discarded in both).
func TestRunBatchFaultParity(t *testing.T) {
	src := `
void k(int a, int b, int* q) {
	*q = a / b;
}
`
	res, err := core.CompileSource(src, "k", core.Options{Optimize: true, PeriodNs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, zeroAt := range []int{0, 1, 37, 255, 256, 299} {
		iters := make([][]int64, 300)
		for i := range iters {
			iters[i] = []int64{int64(i + 1), int64(i%97 + 1)}
			if i == zeroAt {
				iters[i][1] = 0
			}
		}
		serial := dp.NewSim(res.Datapath)
		_, serr := serial.Run(iters)
		batch := dp.NewSim(res.Datapath)
		_, berr := batch.RunBatch(iters)
		if serr == nil || berr == nil {
			t.Fatalf("zeroAt=%d: expected both paths to fault (serial %v, batch %v)", zeroAt, serr, berr)
		}
		if serial.Cycle() != batch.Cycle() {
			t.Fatalf("zeroAt=%d: fault cycle mismatch: serial aborted at cycle %d, batch at %d",
				zeroAt, serial.Cycle(), batch.Cycle())
		}
	}
}

// TestStepNZeroAllocs: the batch steady state must not allocate, for
// both a feedback-free kernel (pure op-major path) and a feedback
// kernel (lane-serialized cone).
func TestStepNZeroAllocs(t *testing.T) {
	for _, k := range []bench.Kernel{bench.DCT(), bench.MulAcc()} {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		sim := dp.NewSim(res.Datapath)
		const n = 64
		in := make([]int64, n*len(res.Datapath.Inputs))
		for i := range in {
			in[i] = int64(i%251 + 1)
		}
		// Warm-up grows the lane scratch and output buffer once.
		if _, err := sim.StepN(in, n); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := sim.StepN(in, n); err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if _, err := sim.DrainN(8); err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: StepN/DrainN steady state allocates %.1f allocs/op, want 0", k.Name, allocs)
		}
	}
}

// TestRunAllocsBounded: Run must allocate only its two result buffers
// (the row headers and the flat backing), never per iteration.
func TestRunAllocsBounded(t *testing.T) {
	res, err := bench.DCT().Compile()
	if err != nil {
		t.Fatal(err)
	}
	sim := dp.NewSim(res.Datapath)
	iters := make([][]int64, 200)
	for i := range iters {
		row := make([]int64, len(res.Datapath.Inputs))
		for j := range row {
			row[j] = int64(i + j)
		}
		iters[i] = row
	}
	allocs := testing.AllocsPerRun(20, func() {
		sim.Reset()
		if _, err := sim.Run(iters); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Run allocates %.1f allocs/op, want at most 2 (result headers + flat backing)", allocs)
	}
}
