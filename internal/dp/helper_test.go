package dp_test

import (
	"roccc/internal/core"
	"roccc/internal/hir"
	"roccc/internal/ssa"
)

// ssaExecGraph runs the kernel's SSA graph in software (soft-node
// semantics) for one iteration.
func ssaExecGraph(res *core.Result, in []int64) ([]int64, error) {
	state := map[*hir.Var]int64{}
	for _, fb := range res.Kernel.Feedback {
		state[fb.Var] = fb.Init
	}
	return ssa.Exec(res.Graph, in, state)
}
