package dp

// verify_test.go plants corrupted execution plans and asserts the
// static verifier rejects each with the right named invariant. The
// plans are built by hand (not through compileSimPlan) so a single
// field can be knocked out of congruence while everything else stays
// valid — exactly the failure mode a compiler bug would produce.

import (
	"strings"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// mkcop builds a plan op with the wrap mode derived the same way the
// compiler derives it, so baseline plans verify cleanly.
func mkcop(opc vm.Opcode, slot int32, stage int32, t cc.IntType, a, b cOperand) cop {
	w := makeWrap(t)
	c := cop{opc: opc, slot: slot, stage: stage, tw: w, hw: w, a: a, b: b, fb: -1}
	c.wmode, c.fw = deriveWrapMode(opc, c.tw, c.hw)
	return c
}

// addPlan is a minimal sound plan: one input feeding an ADD one stage
// later, with the sum read at the pipeline exit.
func addPlan() *simPlan {
	i32 := cc.IntType{Bits: 32, Signed: true}
	p := &simPlan{
		rdepth:  2,
		rmask:   1,
		stages:  1,
		opShift: 1,
		nOps:    2,
		latency: 1,
		opStage: []int32{0, 1},
		fbName:  map[string]int32{},
	}
	add := mkcop(vm.ADD, 2, 1, i32, cOperand{base: 0, off: 1, ring: true}, cOperand{imm: 1})
	p.plan = []cop{add}
	p.inSlots = []inSlot{{base: 0, w: makeWrap(i32)}}
	p.outSlots = []outSlot{{base: 2, delta: 0}}
	p.ringNeed = []int32{1, 0}
	p.seeds = []ringEnt{{idx: 0, st: 0, need: 1}}
	p.commits = []ringEnt{{idx: 0, st: 0, need: 1}}
	p.batchA = []cop{add}
	return p
}

// conePlan is a minimal sound accumulator plan whose feedback cone has
// the closed form: x' = wrap(x + e).
func conePlan() *simPlan {
	i32 := cc.IntType{Bits: 32, Signed: true}
	acc := &hir.Var{Name: "acc", Type: i32}
	p := &simPlan{
		rdepth:  1,
		rmask:   0,
		stages:  0,
		opShift: 0,
		nOps:    4,
		latency: 0,
		opStage: []int32{0, 0, 0, 0},
		fbVars:  []*hir.Var{acc},
		fbInit:  []int64{0},
		fbName:  map[string]int32{"acc": 0},
	}
	lpr := mkcop(vm.LPR, 1, 0, i32, cOperand{}, cOperand{})
	lpr.fb = 0
	add := mkcop(vm.ADD, 2, 0, i32, cOperand{base: 1, ring: true}, cOperand{base: 0, ring: true})
	snx := mkcop(vm.SNX, 3, 0, i32, cOperand{base: 2, ring: true}, cOperand{})
	snx.fb = 0
	p.plan = []cop{lpr, add, snx}
	p.inSlots = []inSlot{{base: 0, w: makeWrap(i32)}}
	p.ringNeed = []int32{0, 0, 0, 0}
	p.batchB = []cop{lpr, add, snx}
	return p
}

// assertInvariant requires at least one violation with the given
// invariant slug (and no violations at all for slug "").
func assertInvariant(t *testing.T, vs []Violation, invariant string) {
	t.Helper()
	if invariant == "" {
		if len(vs) != 0 {
			t.Fatalf("want a clean verification, got %d violations, first: %v", len(vs), vs[0])
		}
		return
	}
	for _, v := range vs {
		if v.Invariant == invariant {
			if !strings.Contains(v.String(), invariant+": ") {
				t.Fatalf("violation %v does not render its invariant name", v)
			}
			return
		}
	}
	t.Fatalf("no %q violation in %v", invariant, vs)
}

func TestVerifyPlanCleanBaselines(t *testing.T) {
	assertInvariant(t, verifyPlan(addPlan()), "")
	p := conePlan()
	assertInvariant(t, verifyPlan(p), "")
	if p.coneFor() == nil {
		t.Fatal("cone plan's feedback cone was not recognized in closed form")
	}
}

func TestVerifyPlanBadRingOffset(t *testing.T) {
	p := addPlan()
	p.plan[0].a.off = 5 // outside the 2-deep history ring
	assertInvariant(t, verifyPlan(p), "plan/ring-offset")

	p = addPlan()
	p.plan[0].a.off = 0 // in bounds, but not the stage distance
	assertInvariant(t, verifyPlan(p), "plan/ring-offset")
}

func TestVerifyPlanRingNeedTooShallow(t *testing.T) {
	p := addPlan()
	p.ringNeed[0] = 0 // the ADD reads one cycle back; seeding 0 loses it
	assertInvariant(t, verifyPlan(p), "plan/ring-need")
}

func TestVerifyPlanWorklistDrift(t *testing.T) {
	p := addPlan()
	p.seeds = nil // region 0 has in-flight history nobody would restore
	assertInvariant(t, verifyPlan(p), "plan/worklist")
}

func TestVerifyPlanWrapIncongruence(t *testing.T) {
	p := addPlan()
	p.plan[0].wmode = wrapBoth // fusable wrap pair left unfused
	p.batchA[0].wmode = wrapBoth
	assertInvariant(t, verifyPlan(p), "plan/wrap-congruence")
}

func TestVerifyPlanBatchClassOverlap(t *testing.T) {
	p := addPlan()
	p.batchC = append(p.batchC, p.batchA[0]) // same op in two classes
	assertInvariant(t, verifyPlan(p), "plan/batch-partition")

	p = addPlan()
	p.batchA = nil // and in no class at all
	assertInvariant(t, verifyPlan(p), "plan/batch-partition")
}

func TestVerifyPlanBatchWrongClass(t *testing.T) {
	p := conePlan()
	// Move the accumulate out of the feedback cone: batchOps would run
	// it op-major before the lane-serial cone produces its latch reads.
	p.batchC = append(p.batchC, p.batchB[1])
	p.batchB = append(p.batchB[:1], p.batchB[2:]...)
	vs := verifyPlan(p)
	assertInvariant(t, vs, "plan/batch-partition")
}

func TestVerifyPlanBatchHazard(t *testing.T) {
	p := addPlan()
	// Reverse a two-op dependence chain within one class: the reader
	// now runs before its producer's lanes are materialized.
	i32 := cc.IntType{Bits: 32, Signed: true}
	p.nOps = 3
	p.opStage = []int32{0, 1, 1}
	mov := mkcop(vm.MOV, 4, 1, i32, cOperand{base: 2, off: 0, ring: true}, cOperand{})
	p.plan = append(p.plan, mov)
	p.ringNeed = []int32{1, 0, 0}
	p.batchA = []cop{mov, p.plan[0]} // reversed topological order
	assertInvariant(t, verifyPlan(p), "plan/batch-hazard")
}

func TestVerifyPlanLatchSlotOutOfRange(t *testing.T) {
	p := conePlan()
	p.plan[2].fb = 3 // latch index past the allocated state
	p.batchB[2].fb = 3
	assertInvariant(t, verifyPlan(p), "plan/latch-slot")
}

func TestVerifyConeCorruptions(t *testing.T) {
	force := func(mut func(p *simPlan, cs *coneSpec)) []Violation {
		p := conePlan()
		cs := p.coneFor()
		if cs == nil {
			t.Fatal("cone not recognized")
		}
		mut(p, cs)
		return verifyPlan(p)
	}
	// The spec claims subtraction but the plan accumulates by ADD: the
	// prefix pass would fold the recurrence with the wrong sign.
	assertInvariant(t, force(func(p *simPlan, cs *coneSpec) { cs.sub = true }), "plan/cone-grammar")
	// The spec's external addend no longer matches the accumulate's.
	assertInvariant(t, force(func(p *simPlan, cs *coneSpec) { cs.ext = cOperand{imm: 7} }), "plan/cone-grammar")
	// A cone op wrapping narrower than the latch breaks the congruence
	// argument that makes the closed form exact.
	assertInvariant(t, force(func(p *simPlan, cs *coneSpec) {
		nw := makeWrap(cc.IntType{Bits: 8, Signed: true})
		p.batchB[1].tw = nw
		p.plan[1].tw = nw
		cs.rest[0].tw = nw
	}), "plan/cone-grammar")
	// The spec records a different stage than the cone ops occupy: lane
	// indexing would misalign.
	assertInvariant(t, force(func(p *simPlan, cs *coneSpec) { cs.stage = 2 }), "plan/cone-grammar")
}
