package dp

import (
	"roccc/internal/cc"
	"roccc/internal/vm"
)

// width.go implements §4.2.4/§5: "By adding more data type in
// Machine-SUIF, ROCCC supports any signed and unsigned integer type up
// to 32 bit. The compiler infers the inner signals' bit size
// automatically" and "We derive bit width only based on port size and
// opcodes."
//
// Every signal carries (width, signed) where signed tracks whether the
// VALUE can be negative — independent of the C-typed (semantic) width.
// Growth rules propagate magnitude bits per opcode; the result is capped
// at the semantic width, where hardware truncation coincides exactly
// with the software wrap.

// sig is an inferred signal shape: u magnitude bits plus a sign bit when
// s is set (total width = u + (s ? 1 : 0)).
type sig struct {
	u int
	s bool
}

func (x sig) width() int {
	if x.s {
		return x.u + 1
	}
	if x.u < 1 {
		return 1
	}
	return x.u
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sigForConst returns the shape of an immediate.
func sigForConst(v int64) sig {
	if v < 0 {
		n := 0
		for x := v; x != -1; x >>= 1 {
			n++
		}
		return sig{u: n, s: true}
	}
	n := 0
	for x := v; x != 0; x >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return sig{u: n, s: false}
}

// bitsForConst returns the two's-complement width needed for v.
func bitsForConst(v int64) int { return sigForConst(v).width() }

// InferWidths computes hardware widths for every op in topological
// order. Call between Build and Pipeline.
func InferWidths(d *Datapath) {
	shapes := map[*Op]sig{}
	shapeOf := func(o vm.Operand) sig {
		if o.IsImm {
			return sigForConst(o.Imm)
		}
		if def := d.DefOf[o.Reg]; def != nil {
			return shapes[def]
		}
		return sig{u: 31, s: true}
	}
	for _, op := range d.Ops {
		in := op.Instr
		sem := in.Typ
		if op.Node.Kind == InputNode {
			t := sig{u: sem.Bits, s: sem.Signed}
			if sem.Signed {
				t.u = sem.Bits - 1
			}
			shapes[op] = t
			op.Width = sem.Bits
			op.Signed = sem.Signed
			continue
		}
		var a, b, c sig
		if len(in.Srcs) > 0 {
			a = shapeOf(in.Srcs[0])
		}
		if len(in.Srcs) > 1 {
			b = shapeOf(in.Srcs[1])
		}
		if len(in.Srcs) > 2 {
			c = shapeOf(in.Srcs[2])
		}
		var t sig
		switch in.Op {
		case vm.LDC, vm.MOV:
			t = a
		case vm.CVT:
			// A widening conversion keeps the value's shape (extension
			// carries no information); only a narrowing or sign-domain
			// change takes the target shape.
			if fitsIn(a, sem) {
				t = a
			} else {
				t = semShape(sem)
			}
		case vm.NOT:
			// Complement sets high bits: full semantic shape.
			t = semShape(sem)
		case vm.ADD:
			t = sig{u: maxInt(a.u, b.u) + 1, s: a.s || b.s}
		case vm.SUB:
			t = sig{u: maxInt(a.u, b.u) + 1, s: true}
		case vm.NEG:
			// Negating a signed value needs one extra magnitude bit:
			// -(-2^u) = +2^u.
			u := a.u
			if a.s {
				u++
			}
			t = sig{u: u, s: true}
		case vm.MUL:
			// (-2^au) * (-2^bu) = +2^(au+bu) needs one extra bit when
			// both operands are signed.
			u := a.u + b.u
			if a.s && b.s {
				u++
			}
			t = sig{u: u, s: a.s || b.s}
		case vm.DIV:
			// (-2^au) / -1 = +2^au.
			u := a.u
			if a.s && b.s {
				u++
			}
			t = sig{u: u, s: a.s || b.s}
		case vm.REM:
			t = sig{u: minInt(a.u, b.u), s: a.s}
		case vm.AND:
			if !a.s && !b.s {
				t = sig{u: minInt(a.u, b.u), s: false}
			} else {
				t = sig{u: maxInt(a.u, b.u), s: a.s || b.s}
			}
		case vm.IOR, vm.XOR:
			t = sig{u: maxInt(a.u, b.u), s: a.s || b.s}
		case vm.SHL:
			if in.Srcs[1].IsImm {
				t = sig{u: a.u + int(in.Srcs[1].Imm), s: a.s}
			} else {
				t = semShape(sem)
			}
		case vm.SHR:
			if in.Srcs[1].IsImm {
				u := a.u - int(in.Srcs[1].Imm)
				if u < 1 {
					u = 1
				}
				t = sig{u: u, s: a.s}
			} else {
				t = a
			}
		case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
			t = sig{u: 1, s: false}
		case vm.MUX:
			t = sig{u: maxInt(b.u, c.u), s: b.s || c.s}
		case vm.LUT:
			t = semShape(in.Rom.Elem)
		case vm.LPR, vm.SNX:
			t = semShape(in.State.Type)
		default:
			t = semShape(sem)
		}
		// Cap at the semantic width: hardware truncates exactly where
		// the C-typed software wraps.
		if t.width() >= sem.Bits {
			t = semShape(sem)
		}
		shapes[op] = t
		op.Width = t.width()
		op.Signed = t.s
	}
	for i := range d.Inputs {
		d.Inputs[i].Width = d.Inputs[i].Var.Type.Bits
	}
	for i := range d.Outputs {
		d.Outputs[i].Width = d.Outputs[i].Var.Type.Bits
	}
}

func semShape(t cc.IntType) sig {
	if t.Signed {
		return sig{u: t.Bits - 1, s: true}
	}
	return sig{u: t.Bits, s: false}
}

// fitsIn reports whether every value of shape a is representable in
// semantic type t.
func fitsIn(a sig, t cc.IntType) bool {
	ts := semShape(t)
	if a.s && !ts.s {
		return false
	}
	return a.u <= ts.u
}

// TotalOpBits sums the widths of all compute ops — a proxy for data-path
// area used by the fast compile-time area estimator ([13], §2).
func (d *Datapath) TotalOpBits() int {
	n := 0
	for _, op := range d.Ops {
		if op.Node.Kind != InputNode {
			n += op.Width
		}
	}
	return n
}
