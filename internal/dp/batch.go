package dp

import (
	"errors"
	"fmt"

	"roccc/internal/vm"
)

// batch.go is the lane-parallel batch execution path of the compiled
// simulator. Step dispatches the whole plan once per clock; for
// sweep-style workloads (thousands of iterations through one data path)
// that per-cycle dispatch dominates. StepN/DrainN instead execute N
// clocks per call over a structure-of-arrays lane layout: one flat
// region of lane values per op, one valid/poison bit per lane, and one
// switch dispatch per op per chunk instead of per op per cycle.
//
// Correctness carve-outs, both pinned by differential tests against the
// serial core:
//
//   - Feedback latches carry a loop-carried dependence (iteration i's
//     LPR reads what iteration i-1's SNX committed), so the feedback
//     cone of the plan (simPlan.batchB) serializes lane by lane while
//     everything before/after it still runs op-major (batchA/batchC).
//   - Faults must abort on the same cycle with the same state as the
//     serial core. The batch computes into scratch lanes without
//     touching the ring, so on the first detected fault the scratch is
//     discarded and the chunk replays through the serial step — the
//     abort cycle, error and post-abort state are Step's exactly.

// batchChunkMax bounds the lane scratch: a StepN over millions of
// iterations runs as a sequence of chunks, keeping the scratch at
// nOps × (stages + batchChunkMax) values.
const batchChunkMax = 256

// batchSerialMax is the largest chunk still run through the serial core:
// below it the op-major pass spends more time seeding in-flight lanes
// than it saves on dispatch.
const batchSerialMax = 2

// errBatchFault signals (internally) that a valid lane hit a faulting
// op; the chunk is replayed serially to reproduce the exact abort.
var errBatchFault = errors.New("dp: sim: batch lane fault")

// StepN advances n clocks, feeding one valid iteration per clock from
// the flat row-major inputs (n rows of len(Inputs) values each). It is
// bit-identical to n successive Step calls. The returned slice holds n
// rows of output-port values, one per clock, in the same layout as the
// inputs; like Step's, it is reused between calls — copy it to retain
// values. On a fault (e.g. division by zero on a valid iteration) the
// faulting cycle is aborted exactly as Step aborts it: every cycle
// before it has committed, and the error is Step's error.
//
//roccc:hotpath
func (s *Sim) StepN(inputs []int64, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("dp: sim: StepN with negative count %d", n)
	}
	if inW := len(s.p.inSlots); len(inputs) != n*inW {
		return nil, fmt.Errorf("dp: sim: StepN: %d input values, want %d (%d cycles × %d ports)",
			len(inputs), n*inW, n, inW)
	}
	return s.batchRun(inputs, n, true)
}

// DrainN advances n clocks with pipeline bubbles, bit-identical to n
// successive Drain calls: zero inputs enter, the bubbles carry poison
// bits, faults in bubble lanes are masked and bubbles never commit
// feedback latches. The returned slice holds n output rows and is
// reused between calls.
//
//roccc:hotpath
func (s *Sim) DrainN(n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("dp: sim: DrainN with negative count %d", n)
	}
	return s.batchRun(nil, n, false)
}

// RunBatch is Run on the batch path: all iterations are fed through
// StepN, the pipeline is drained through DrainN, and the outputs are
// returned one row per iteration, aligned with the inputs —
// bit-identical to Run over the same vectors, including the cycle a
// fault aborts on.
func (s *Sim) RunBatch(iters [][]int64) ([][]int64, error) {
	if len(iters) == 0 {
		return nil, nil
	}
	inW := len(s.p.inSlots)
	n := len(iters)
	if cap(s.batchIn) < n*inW {
		s.batchIn = make([]int64, n*inW)
	}
	flat := s.batchIn[:n*inW]
	for i, row := range iters {
		if len(row) != inW {
			return nil, fmt.Errorf("dp: sim: RunBatch: iteration %d has %d inputs, want %d", i, len(row), inW)
		}
		copy(flat[i*inW:(i+1)*inW], row)
	}
	lat := s.p.latency
	outW := len(s.p.outSlots)
	outs := make([][]int64, 0, n)
	backing := make([]int64, n*outW)
	collect := func(rows []int64, first, count int) {
		for r := first; r < count; r++ {
			row := backing[len(outs)*outW : (len(outs)+1)*outW]
			copy(row, rows[r*outW:(r+1)*outW])
			outs = append(outs, row)
		}
	}
	stepOut, err := s.StepN(flat, n)
	if err != nil {
		return nil, err
	}
	collect(stepOut, min(lat, n), n)
	drainOut, err := s.DrainN(lat)
	if err != nil {
		return nil, err
	}
	collect(drainOut, max(0, lat-n), lat)
	return outs, nil
}

// batchRun splits an n-clock batch into scratch-bounded chunks.
//
//roccc:hotpath
func (s *Sim) batchRun(inputs []int64, n int, valid bool) ([]int64, error) {
	outW := len(s.p.outSlots)
	inW := len(s.p.inSlots)
	if cap(s.batchOut) < n*outW {
		s.batchOut = make([]int64, n*outW)
	}
	out := s.batchOut[:n*outW]
	for done := 0; done < n; {
		c := n - done
		if c > batchChunkMax {
			c = batchChunkMax
		}
		var in []int64
		if valid {
			in = inputs[done*inW : (done+c)*inW]
		}
		if err := s.batchChunk(in, c, valid, out[done*outW:(done+c)*outW]); err != nil {
			return nil, err
		}
		done += c
	}
	return out, nil
}

// serialChunk runs one chunk through the serial core (tiny chunks,
// pure-feedback plans, and fault replays). interpOnly forces the
// interpreter step regardless of backend: fault replays go straight to
// the canonical loop instead of re-entering the threaded step only to
// fall back again on the faulting cycle.
//
//roccc:hotpath
//roccc:serial-replay
func (s *Sim) serialChunk(in []int64, n int, valid bool, out []int64, interpOnly bool) error {
	inW := len(s.p.inSlots)
	outW := len(s.p.outSlots)
	for c := 0; c < n; c++ {
		row := s.zeroBuf
		if valid {
			row = in[c*inW : (c+1)*inW]
		}
		var o []int64
		var err error
		if interpOnly {
			o, err = s.stepInterp(row, valid)
		} else {
			o, err = s.step(row, valid)
		}
		if err != nil {
			return err
		}
		copy(out[c*outW:(c+1)*outW], o)
	}
	return nil
}

// batchChunk executes one chunk of up to batchChunkMax clocks on the
// lane layout, committing ring, valid ring, feedback state, cycle count
// and outputs only after the whole chunk has computed fault-free.
//
//roccc:hotpath
func (s *Sim) batchChunk(in []int64, n int, valid bool, out []int64) error {
	p := s.p
	// Resolve the backend's compiled artifacts up front: the threaded
	// plan brings its lane kernels and a fixed lane stride; the cone
	// backends bring the closed-form feedback cone (when recognized),
	// which unlocks the lane layout for plans that would otherwise be
	// pure-feedback.
	var tp *threadPlan
	var cone *coneSpec
	switch s.backend {
	case BackendThreaded:
		tp = p.threadFor()
		cone = tp.cone
	case BackendCone:
		cone = p.coneFor()
	}
	if n <= batchSerialMax || (cone == nil && len(p.batchB) > 0 && len(p.batchA)+len(p.batchC) == 0) {
		return s.serialChunk(in, n, valid, out, false)
	}
	stages := p.stages
	laneN := stages + n
	if tp != nil {
		// The threaded lane kernels bake region bases against the plan's
		// fixed maximal stride; short chunks leave the tail lanes unused.
		laneN = tp.laneN
	}
	if need := p.nOps * laneN; cap(s.laneVals) < need {
		s.laneVals = make([]int64, need)
	}
	lanes := s.laneVals[:p.nOps*laneN]
	if cap(s.laneValid) < laneN {
		s.laneValid = make([]bool, laneN)
	}
	lv := s.laneValid[:laneN]
	if err := s.batchCompute(in, n, valid, lanes, lv, laneN, tp, cone); err != nil {
		// A valid lane hit a faulting op. Nothing has been committed:
		// drop the staged latch writes and replay the chunk serially so
		// the abort cycle, error and state match Step exactly.
		for i := range s.stagedSet {
			s.stagedSet[i] = false
		}
		return s.serialChunk(in, n, valid, out, true)
	}
	s.commitChunk(n, valid, lanes, laneN, out)
	return nil
}

// batchCompute fills the lane scratch: validity, in-flight seeds from
// the ring, batch input rows, then the three execution classes — each
// class dispatched through the backend's artifacts when present (tp for
// threaded lane kernels, cone for the closed-form feedback cone).
//
//roccc:hotpath
//roccc:chunk-compute
func (s *Sim) batchCompute(in []int64, n int, valid bool, lanes []int64, lv []bool, laneN int, tp *threadPlan, cone *coneSpec) error {
	p := s.p
	stages := p.stages
	cycle0 := s.cycle
	it0 := cycle0 - stages
	h0 := s.head
	rmask := s.rmask
	ring := s.ring

	// Lane k holds iteration it0+k: the first `stages` lanes are the
	// iterations (or bubbles) already in flight, the rest are this
	// batch's admissions.
	for k := 0; k < stages; k++ {
		it := it0 + k
		lv[k] = it >= 0 && s.validRing[it&rmask]
	}
	for k := stages; k < stages+n; k++ {
		lv[k] = valid
	}

	// Seed each op's in-flight prefix from the ring: the value op
	// computed for iteration it0+k was written at cycle it0+k+stage,
	// which the ring still holds (rdepth > stages). Only the prefix tail
	// anything can read is seeded — a consumer at stage delta d reads
	// lanes [stages-st-d, stages-st) of the def's region, so lanes below
	// stages-st-ringNeed are never touched (the seeds worklist skips
	// whole regions nobody reads).
	for i := range p.seeds {
		e := &p.seeds[i]
		st := int(e.st)
		pre := stages - st
		k0 := pre - int(e.need)
		if k0 < 0 {
			k0 = 0
		}
		base := int(e.idx) << p.opShift
		lbase := int(e.idx) * laneN
		for k := k0; k < pre; k++ {
			lanes[lbase+k] = ring[base+((h0+stages-1-st-k)&rmask)]
		}
	}

	// Batch rows of the input pseudo-ops (bubble batches feed zeros).
	// The wrap branch is hoisted out of the row loop: most ports narrow
	// (one shift pair per value), 64-bit ports copy straight through.
	inW := len(p.inSlots)
	for i := range p.inSlots {
		sl := &p.inSlots[i]
		idx := int(sl.base) >> p.opShift
		lbase := idx*laneN + stages - int(p.opStage[idx])
		dst := lanes[lbase : lbase+n]
		if !valid {
			clear(dst)
			continue
		}
		switch sh := sl.w.sh; {
		case sh == 0:
			for r := range dst {
				dst[r] = in[r*inW+i]
			}
		case sl.w.signed:
			for r := range dst {
				dst[r] = in[r*inW+i] << sh >> sh
			}
		default:
			for r := range dst {
				dst[r] = int64(uint64(in[r*inW+i]) << sh >> sh)
			}
		}
	}

	if tp != nil {
		if !runLaneFns(tp.laneA, lanes, lv, n) {
			return errBatchFault
		}
	} else if err := s.batchOps(p.batchA, n, lanes, lv, laneN); err != nil {
		return err
	}
	if len(p.batchB) > 0 {
		var err error
		switch {
		case cone != nil && tp != nil:
			err = s.runCone(cone, n, lanes, lv, laneN, tp.coneFns)
		case cone != nil:
			err = s.runCone(cone, n, lanes, lv, laneN, nil)
		default:
			err = s.batchCone(p.batchB, n, lanes, lv, laneN)
		}
		if err != nil {
			return err
		}
	}
	if tp != nil {
		if !runLaneFns(tp.laneC, lanes, lv, n) {
			return errBatchFault
		}
		return nil
	}
	return s.batchOps(p.batchC, n, lanes, lv, laneN)
}

// laneCtx resolves pre-compiled operands against the lane scratch: the
// same iteration lane of the defining op's region, or an immediate.
type laneCtx struct {
	lanes []int64
	laneN int
	sh    uint
}

//roccc:hotpath
func (c *laneCtx) get(o *cOperand, k int) int64 {
	if !o.ring {
		return o.imm
	}
	return c.lanes[(int(o.base)>>c.sh)*c.laneN+k]
}

// laneOperand is an operand resolved once per op for the op-major pass:
// either the defining op's whole lane region or an immediate, so the
// per-lane inner loops index a hoisted slice instead of multiplying the
// region base out on every access.
type laneOperand struct {
	sl  []int64
	imm int64
}

func (o laneOperand) at(k int) int64 {
	if o.sl == nil {
		return o.imm
	}
	return o.sl[k]
}

func (c *laneCtx) operand(o *cOperand) laneOperand {
	if !o.ring {
		return laneOperand{imm: o.imm}
	}
	base := (int(o.base) >> c.sh) * c.laneN
	return laneOperand{sl: c.lanes[base : base+c.laneN]}
}

// batchOps runs one op-major class: one switch dispatch per op, then a
// tight loop over the op's computable lanes. An op at stage st computes
// iterations whose st-stage cycle falls inside this chunk — lanes
// [stages-st, stages-st+n); earlier lanes were seeded, later ones
// belong to a later chunk.
//
//roccc:hotpath
func (s *Sim) batchOps(ops []cop, n int, lanes []int64, lv []bool, laneN int) error {
	p := s.p
	stages := p.stages
	c := laneCtx{lanes: lanes, laneN: laneN, sh: p.opShift}
	for i := range ops {
		op := &ops[i]
		k0 := stages - int(op.stage)
		k1 := k0 + n
		lbase := (int(op.slot) >> p.opShift) * laneN
		dst := lanes[lbase : lbase+laneN]
		a := c.operand(&op.a)
		b := c.operand(&op.b)
		// Raw compute pass: the wrap pass below truncates the whole lane
		// range at once with the op's precompiled wrap mode. The dominant
		// arithmetic ops get equal-length subslice loops (bounds checks
		// hoisted, no per-lane nil branch) for the ring×ring and
		// ring×immediate layouts; everything else takes the generic
		// operand accessor.
		switch op.opc {
		case vm.LDC, vm.MOV, vm.CVT:
			if a.sl != nil {
				copy(dst[k0:k1], a.sl[k0:k1])
			} else {
				for k := k0; k < k1; k++ {
					dst[k] = a.imm
				}
			}
		case vm.ADD:
			if op.wmode != wrapBoth {
				d := dst[k0:k1]
				switch {
				case a.sl != nil && b.sl != nil:
					fusedAdd(d, a.sl[k0:k1], b.sl[k0:k1], op.fw)
				case a.sl != nil:
					fusedAddImm(d, a.sl[k0:k1], b.imm, op.fw)
				case b.sl != nil:
					fusedAddImm(d, b.sl[k0:k1], a.imm, op.fw)
				default:
					fusedFill(d, a.imm+b.imm, op.fw)
				}
				continue
			}
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) + b.at(k)
			}
		case vm.SUB:
			if op.wmode != wrapBoth {
				d := dst[k0:k1]
				switch {
				case a.sl != nil && b.sl != nil:
					fusedSub(d, a.sl[k0:k1], b.sl[k0:k1], op.fw)
				case a.sl != nil:
					fusedAddImm(d, a.sl[k0:k1], -b.imm, op.fw)
				case b.sl != nil:
					fusedSubFrom(d, a.imm, b.sl[k0:k1], op.fw)
				default:
					fusedFill(d, a.imm-b.imm, op.fw)
				}
				continue
			}
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) - b.at(k)
			}
		case vm.MUL:
			if op.wmode != wrapBoth {
				d := dst[k0:k1]
				switch {
				case a.sl != nil && b.sl != nil:
					fusedMul(d, a.sl[k0:k1], b.sl[k0:k1], op.fw)
				case a.sl != nil:
					fusedMulImm(d, a.sl[k0:k1], b.imm, op.fw)
				case b.sl != nil:
					fusedMulImm(d, b.sl[k0:k1], a.imm, op.fw)
				default:
					fusedFill(d, a.imm*b.imm, op.fw)
				}
				continue
			}
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) * b.at(k)
			}
		case vm.DIV:
			for k := k0; k < k1; k++ {
				bv := b.at(k)
				if bv == 0 {
					if lv[k] {
						return errBatchFault
					}
					dst[k] = 0
					continue
				}
				dst[k] = a.at(k) / bv
			}
		case vm.REM:
			for k := k0; k < k1; k++ {
				bv := b.at(k)
				if bv == 0 {
					if lv[k] {
						return errBatchFault
					}
					dst[k] = 0
					continue
				}
				dst[k] = a.at(k) % bv
			}
		case vm.AND:
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) & b.at(k)
			}
		case vm.IOR:
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) | b.at(k)
			}
		case vm.XOR:
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) ^ b.at(k)
			}
		case vm.SHL:
			for k := k0; k < k1; k++ {
				dst[k] = a.at(k) << uint(b.at(k)&63)
			}
		case vm.SHR:
			if op.shrLogical {
				for k := k0; k < k1; k++ {
					dst[k] = int64((uint64(a.at(k)) & op.shrMask) >> uint(b.at(k)&63))
				}
			} else {
				for k := k0; k < k1; k++ {
					dst[k] = a.at(k) >> uint(b.at(k)&63)
				}
			}
		case vm.NEG:
			for k := k0; k < k1; k++ {
				dst[k] = -a.at(k)
			}
		case vm.NOT:
			for k := k0; k < k1; k++ {
				dst[k] = ^a.at(k)
			}
		case vm.SEQ:
			for k := k0; k < k1; k++ {
				dst[k] = boolBit(a.at(k) == b.at(k))
			}
		case vm.SNE:
			for k := k0; k < k1; k++ {
				dst[k] = boolBit(a.at(k) != b.at(k))
			}
		case vm.SLT:
			for k := k0; k < k1; k++ {
				dst[k] = boolBit(a.at(k) < b.at(k))
			}
		case vm.SLE:
			for k := k0; k < k1; k++ {
				dst[k] = boolBit(a.at(k) <= b.at(k))
			}
		case vm.MUX:
			cc := c.operand(&op.c)
			for k := k0; k < k1; k++ {
				if a.at(k) != 0 {
					dst[k] = b.at(k)
				} else {
					dst[k] = cc.at(k)
				}
			}
		case vm.LUT:
			for k := k0; k < k1; k++ {
				ix := a.at(k)
				if ix < 0 || ix >= int64(op.rom.Size) {
					if lv[k] {
						return errBatchFault
					}
					dst[k] = 0
					continue
				}
				dst[k] = op.rom.Content[ix]
			}
		default:
			// LPR/SNX live in the cone; anything else is unsupported —
			// the serial replay will produce the proper error.
			return errBatchFault
		}
		wrapLanes(dst[k0:k1], op)
	}
	return nil
}

// The fused lane helpers compute the dominant arithmetic ops with the
// op's single wrap applied in the same pass — one traversal instead of
// a raw pass plus wrapLanes — for the ring×ring and ring×immediate
// operand layouts. A zero-shift wrap spec (64-bit result, wrapNone) is
// the raw loop. The loop bodies live in functions so each stays tight
// and bounds-check-eliminated; the call overhead is per chunk, not per
// lane.

func fusedAdd(d, a, b []int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = a[k] + b[k]
		}
	case w.signed:
		for k := range d {
			d[k] = (a[k] + b[k]) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(a[k]+b[k]) << w.sh >> w.sh)
		}
	}
}

func fusedAddImm(d, a []int64, imm int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = a[k] + imm
		}
	case w.signed:
		for k := range d {
			d[k] = (a[k] + imm) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(a[k]+imm) << w.sh >> w.sh)
		}
	}
}

func fusedSub(d, a, b []int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = a[k] - b[k]
		}
	case w.signed:
		for k := range d {
			d[k] = (a[k] - b[k]) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(a[k]-b[k]) << w.sh >> w.sh)
		}
	}
}

func fusedSubFrom(d []int64, imm int64, b []int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = imm - b[k]
		}
	case w.signed:
		for k := range d {
			d[k] = (imm - b[k]) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(imm-b[k]) << w.sh >> w.sh)
		}
	}
}

func fusedMul(d, a, b []int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = a[k] * b[k]
		}
	case w.signed:
		for k := range d {
			d[k] = (a[k] * b[k]) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(a[k]*b[k]) << w.sh >> w.sh)
		}
	}
}

func fusedMulImm(d, a []int64, imm int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		for k := range d {
			d[k] = a[k] * imm
		}
	case w.signed:
		for k := range d {
			d[k] = (a[k] * imm) << w.sh >> w.sh
		}
	default:
		for k := range d {
			d[k] = int64(uint64(a[k]*imm) << w.sh >> w.sh)
		}
	}
}

func fusedFill(d []int64, v int64, w wrapSpec) {
	v = w.wrap(v)
	for k := range d {
		d[k] = v
	}
}

// wrapLanes applies an op's precompiled wrap mode to its computed lane
// range in one branch-free-per-op pass: nothing, one fused wrap, or the
// full semantic-then-hardware pair (bit-identical to step's
// op.hw.wrap(op.tw.wrap(v)) in every mode — a zero raw value, as a
// poisoned divide leaves behind, wraps to zero in all of them).
//
//roccc:hotpath
func wrapLanes(d []int64, op *cop) {
	switch op.wmode {
	case wrapNone:
	case wrapSingle:
		sh := op.fw.sh
		if op.fw.signed {
			for i := range d {
				d[i] = d[i] << sh >> sh
			}
		} else {
			for i := range d {
				d[i] = int64(uint64(d[i]) << sh >> sh)
			}
		}
	default:
		tw, hw := op.tw, op.hw
		for i := range d {
			d[i] = hw.wrap(tw.wrap(d[i]))
		}
	}
}

// batchCone runs the feedback cone lane by lane. The running latch
// state lives in batchState (scratch — committed only by commitChunk):
// within a lane, LPRs read it and SNXs stage into it in plan order;
// at the end of the lane the staged writes commit, exactly as the
// serial clock edge commits them — each latch is touched by exactly one
// iteration per cycle, so per-lane order is per-cycle order.
//
//roccc:hotpath
func (s *Sim) batchCone(ops []cop, n int, lanes []int64, lv []bool, laneN int) error {
	p := s.p
	stages := p.stages
	c := laneCtx{lanes: lanes, laneN: laneN, sh: p.opShift}
	st := s.batchState[:len(s.state)]
	copy(st, s.state)
	staged := false
	// Only lanes below stages+n are computable this chunk (laneN can be
	// larger under the threaded backend's fixed stride).
	for k := 0; k < stages+n; k++ {
		for i := range ops {
			op := &ops[i]
			k0 := stages - int(op.stage)
			if k < k0 || k >= k0+n {
				continue // seeded in-flight lane, or a later chunk's cycle
			}
			var v int64
			switch op.opc {
			case vm.LPR:
				// Latches bypass hardware-width wrapping, as in the
				// serial core.
				lanes[(int(op.slot)>>p.opShift)*laneN+k] = st[op.fb]
				continue
			case vm.SNX:
				if lv[k] {
					s.stagedVal[op.fb] = op.tw.wrap(c.get(&op.a, k))
					s.stagedSet[op.fb] = true
					staged = true
				}
				continue
			case vm.LDC, vm.MOV, vm.CVT:
				v = op.tw.wrap(c.get(&op.a, k))
			case vm.ADD:
				v = op.tw.wrap(c.get(&op.a, k) + c.get(&op.b, k))
			case vm.SUB:
				v = op.tw.wrap(c.get(&op.a, k) - c.get(&op.b, k))
			case vm.MUL:
				v = op.tw.wrap(c.get(&op.a, k) * c.get(&op.b, k))
			case vm.DIV:
				b := c.get(&op.b, k)
				if b == 0 {
					if lv[k] {
						return errBatchFault
					}
					v = 0
					break
				}
				v = op.tw.wrap(c.get(&op.a, k) / b)
			case vm.REM:
				b := c.get(&op.b, k)
				if b == 0 {
					if lv[k] {
						return errBatchFault
					}
					v = 0
					break
				}
				v = op.tw.wrap(c.get(&op.a, k) % b)
			case vm.AND:
				v = op.tw.wrap(c.get(&op.a, k) & c.get(&op.b, k))
			case vm.IOR:
				v = op.tw.wrap(c.get(&op.a, k) | c.get(&op.b, k))
			case vm.XOR:
				v = op.tw.wrap(c.get(&op.a, k) ^ c.get(&op.b, k))
			case vm.SHL:
				v = op.tw.wrap(c.get(&op.a, k) << uint(c.get(&op.b, k)&63))
			case vm.SHR:
				a := c.get(&op.a, k)
				sh := uint(c.get(&op.b, k) & 63)
				if op.shrLogical {
					v = op.tw.wrap(int64((uint64(a) & op.shrMask) >> sh))
				} else {
					v = op.tw.wrap(a >> sh)
				}
			case vm.NEG:
				v = op.tw.wrap(-c.get(&op.a, k))
			case vm.NOT:
				v = op.tw.wrap(^c.get(&op.a, k))
			case vm.SEQ:
				v = boolBit(c.get(&op.a, k) == c.get(&op.b, k))
			case vm.SNE:
				v = boolBit(c.get(&op.a, k) != c.get(&op.b, k))
			case vm.SLT:
				v = boolBit(c.get(&op.a, k) < c.get(&op.b, k))
			case vm.SLE:
				v = boolBit(c.get(&op.a, k) <= c.get(&op.b, k))
			case vm.MUX:
				if c.get(&op.a, k) != 0 {
					v = op.tw.wrap(c.get(&op.b, k))
				} else {
					v = op.tw.wrap(c.get(&op.c, k))
				}
			case vm.LUT:
				ix := c.get(&op.a, k)
				if ix < 0 || ix >= int64(op.rom.Size) {
					if lv[k] {
						return errBatchFault
					}
					lanes[(int(op.slot)>>p.opShift)*laneN+k] = 0
					continue
				}
				lanes[(int(op.slot)>>p.opShift)*laneN+k] = op.rom.Content[ix]
				continue
			default:
				return errBatchFault
			}
			lanes[(int(op.slot)>>p.opShift)*laneN+k] = op.hw.wrap(v)
		}
		if staged {
			for i := range s.stagedSet {
				if s.stagedSet[i] {
					s.stagedSet[i] = false
					st[i] = s.stagedVal[i]
				}
			}
			staged = false
		}
	}
	return nil
}

// commitChunk applies a fault-free chunk to the simulator state: ring
// history (the last rdepth cycles of every op and input), valid ring,
// feedback latches, cycle count, head, and the chunk's output rows.
//
//roccc:hotpath
func (s *Sim) commitChunk(n int, valid bool, lanes []int64, laneN int, out []int64) {
	p := s.p
	stages := p.stages
	cycle0 := s.cycle
	rmask := s.rmask
	ring := s.ring
	hNew := (s.head - n) & rmask
	// Cycle cycle0+r lands at ring position (hNew + n-1-r) & rmask; the
	// iteration an op serves at that cycle is lane stages-stage+r. Only
	// the last ringNeed cycles of each region in the commit worklist are
	// written — every future read (serial operand fetch, output
	// alignment, the next chunk's seeding) stays within that depth of
	// the head, so deeper slots can hold stale values without ever being
	// observed.
	for i := range p.commits {
		e := &p.commits[i]
		fi := n - int(e.need)
		if fi < 0 {
			fi = 0
		}
		base := int(e.idx) << p.opShift
		lbase := int(e.idx)*laneN + stages - int(e.st)
		for r := fi; r < n; r++ {
			ring[base+((hNew+n-1-r)&rmask)] = lanes[lbase+r]
		}
	}
	vfirst := 0
	if n > p.rdepth {
		vfirst = n - p.rdepth
	}
	for r := vfirst; r < n; r++ {
		s.validRing[(cycle0+r)&rmask] = valid
	}
	if len(p.batchB) > 0 {
		copy(s.state, s.batchState)
		for i, v := range p.fbVars {
			s.State[v] = s.state[i]
		}
	}
	// Output row r belongs to the iteration admitted latency cycles
	// before cycle cycle0+r — lane stages-latency+r.
	outW := len(p.outSlots)
	for i := range p.outSlots {
		o := &p.outSlots[i]
		lbase := (int(o.base)>>p.opShift)*laneN + stages - p.latency
		for r := 0; r < n; r++ {
			out[r*outW+i] = lanes[lbase+r]
		}
	}
	s.head = hNew
	s.cycle = cycle0 + n
}
