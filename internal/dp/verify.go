package dp

// verify.go is the data-path half of the static invariant verifier
// (cmd/rocccvet, internal/dpverify): every property that makes a
// compiled simPlan safe to execute — ring offsets in bounds, ringNeed
// depths, wrap-mode congruence, the A/B/C batch partition, the
// closed-form feedback cone — is re-derived here from first principles
// and checked against what compileSimPlan actually produced, without
// executing a single cycle. The checks are deliberately written as an
// independent second implementation of the contracts (not calls back
// into the compiler), so a bug in compileSimPlan and a bug in the
// verifier must coincide to slip through.
//
// Under the `dpverify` build tag the whole pass also runs automatically
// at plan-compile time (verify_hook_on.go), so -race and soak CI jobs
// carry it over every kernel they compile, including fuzz-generated
// ones.

import (
	"fmt"
	"math/bits"

	"roccc/internal/vm"
)

// Violation is one named static-invariant failure. Invariant is a
// stable slug ("plan/ring-offset", "system/need-clear", ...) shared by
// every verifier layer (dp, netlist, smartbuf, vhdl); Detail says what
// was found where.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// violations accumulates Violation values with printf formatting.
type violations []Violation

func (vs *violations) add(inv, format string, args ...any) {
	*vs = append(*vs, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Verify statically checks the data path's compiled execution plan
// (compiling it on first use): plan self-consistency plus congruence
// with the Datapath it was compiled from. It returns every violation
// found; an empty slice means the plan upholds all verified invariants.
func Verify(d *Datapath) []Violation {
	p := d.simPlanFor()
	vs := verifyPlan(p)
	vs = append(vs, verifyPlanDatapath(p, d)...)
	return vs
}

// verifyPlan checks a simPlan's internal consistency: everything that
// can be established from the plan alone, with no Datapath at hand (the
// corruption tests construct synthetic plans). The checks mirror the
// execution model, not the compiler: each one states why Step/StepN
// cannot go out of bounds or diverge from the serial semantics.
func verifyPlan(p *simPlan) []Violation {
	var vs violations

	// plan/geometry: the ring layout every fetch depends on. rdepth must
	// be a power of two strictly deeper than the pipeline (an operand can
	// read back at most `stages` cycles, and one extra slot is being
	// written this cycle), with rmask/opShift derived from it.
	switch {
	case p.rdepth <= 0 || p.rdepth&(p.rdepth-1) != 0:
		vs.add("plan/geometry", "rdepth %d is not a positive power of two", p.rdepth)
	case p.rdepth <= p.stages:
		vs.add("plan/geometry", "rdepth %d cannot hold %d pipeline stages of history", p.rdepth, p.stages)
	default:
		if p.rmask != p.rdepth-1 {
			vs.add("plan/geometry", "rmask %#x does not match rdepth %d", p.rmask, p.rdepth)
		}
		if p.opShift != uint(bits.TrailingZeros(uint(p.rdepth))) {
			vs.add("plan/geometry", "opShift %d does not match rdepth %d", p.opShift, p.rdepth)
		}
	}
	if len(p.opStage) != p.nOps {
		vs.add("plan/geometry", "opStage holds %d entries for %d ops", len(p.opStage), p.nOps)
		return vs // every later check indexes opStage by op
	}
	if p.rdepth <= 0 || p.rdepth&(p.rdepth-1) != 0 || p.rmask != p.rdepth-1 {
		return vs // ring addressing is broken; offset checks would lie
	}

	idxOf := func(base int32) int { return int(base) >> p.opShift }
	alignedRegion := func(base int32) bool {
		return base >= 0 && int(base)%p.rdepth == 0 && idxOf(base) < p.nOps
	}

	// Which op regions are defined by plan cops (everything else is an
	// input pseudo-op region, written by inSlots), and at which plan
	// position — operands may only read regions defined earlier
	// (topological order) or input regions.
	defPos := make(map[int]int, len(p.plan))
	for i := range p.plan {
		c := &p.plan[i]
		if !alignedRegion(c.slot) {
			vs.add("plan/geometry", "op %d: slot %d is not an aligned ring region (rdepth %d, %d ops)", i, c.slot, p.rdepth, p.nOps)
			continue
		}
		if prev, dup := defPos[idxOf(c.slot)]; dup {
			vs.add("plan/geometry", "ops %d and %d share ring region %d", prev, i, idxOf(c.slot))
		}
		defPos[idxOf(c.slot)] = i
	}
	inputRegion := make([]bool, p.nOps)
	for i := range p.inSlots {
		sl := &p.inSlots[i]
		if !alignedRegion(sl.base) {
			vs.add("plan/geometry", "input %d: base %d is not an aligned ring region", i, sl.base)
			continue
		}
		if pos, isOp := defPos[idxOf(sl.base)]; isOp {
			vs.add("plan/geometry", "input %d shares ring region %d with op %d", i, idxOf(sl.base), pos)
		}
		inputRegion[idxOf(sl.base)] = true
	}

	// plan/ring-offset and plan/ring-need: every operand read must stay
	// inside the allocated history depth, within the region's declared
	// read-back need (the batch path seeds/commits only that much), and
	// equal the pipeline distance between consumer and producer — the
	// latch-count property ("any path between two ops crosses the same
	// number of latches").
	checkOperand := func(pos int, which string, c *cop, o *cOperand) {
		if !o.ring {
			return
		}
		if !alignedRegion(o.base) {
			vs.add("plan/ring-offset", "op %d operand %s: base %d is not an aligned ring region", pos, which, o.base)
			return
		}
		idx := idxOf(o.base)
		if defAt, isOp := defPos[idx]; isOp {
			if defAt >= pos {
				vs.add("plan/ring-offset", "op %d operand %s reads region %d defined later at plan position %d", pos, which, idx, defAt)
			}
		} else if !inputRegion[idx] {
			vs.add("plan/ring-offset", "op %d operand %s reads region %d, which no op or input defines", pos, which, idx)
		}
		if o.off < 0 || int(o.off) > p.rmask {
			vs.add("plan/ring-offset", "op %d operand %s: offset %d outside history depth %d", pos, which, o.off, p.rdepth)
			return
		}
		if idx < len(p.ringNeed) && o.off > p.ringNeed[idx] {
			vs.add("plan/ring-need", "op %d operand %s reads %d cycles back into region %d, deeper than ringNeed %d", pos, which, o.off, idx, p.ringNeed[idx])
		}
		if want := c.stage - p.opStage[idx]; o.off != want {
			vs.add("plan/ring-offset", "op %d operand %s: offset %d does not equal stage distance %d (consumer stage %d, producer stage %d)",
				pos, which, o.off, want, c.stage, p.opStage[idx])
		}
	}
	for i := range p.plan {
		c := &p.plan[i]
		if c.stage < 0 || int(c.stage) > p.stages {
			vs.add("plan/geometry", "op %d: stage %d outside pipeline [0,%d]", i, c.stage, p.stages)
			continue
		}
		if alignedRegion(c.slot) && p.opStage[idxOf(c.slot)] != c.stage {
			vs.add("plan/geometry", "op %d: stage %d disagrees with opStage[%d]=%d", i, c.stage, idxOf(c.slot), p.opStage[idxOf(c.slot)])
		}
		checkOperand(i, "a", c, &c.a)
		checkOperand(i, "b", c, &c.b)
		checkOperand(i, "c", c, &c.c)

		// plan/wrap-congruence: the batch wrap pass (wmode/fw) must be
		// the exact fusion of the semantic and hardware wraps Step
		// applies per cycle. Re-derive the mode from (opc, tw, hw) alone.
		if c.tw.sh > 63 || c.hw.sh > 63 || c.fw.sh > 63 {
			vs.add("plan/wrap-congruence", "op %d: wrap shift out of range (tw %d, hw %d, fw %d)", i, c.tw.sh, c.hw.sh, c.fw.sh)
		}
		wantMode, wantFW := deriveWrapMode(c.opc, c.tw, c.hw)
		if c.wmode != wantMode || (wantMode == wrapSingle && c.fw != wantFW) {
			vs.add("plan/wrap-congruence", "op %d (%s): wrap mode %d/fw %+v, want %d/%+v for tw %+v hw %+v",
				i, c.opc, c.wmode, c.fw, wantMode, wantFW, c.tw, c.hw)
		}

		// plan/latch-slot: only latch ops carry a latch index, and it
		// must address an allocated latch.
		switch c.opc {
		case vm.LPR, vm.SNX:
			if c.fb < 0 || int(c.fb) >= len(p.fbVars) {
				vs.add("plan/latch-slot", "op %d (%s): latch index %d outside %d latches", i, c.opc, c.fb, len(p.fbVars))
			}
		default:
			if c.fb >= 0 && int(c.fb) >= len(p.fbVars) {
				vs.add("plan/latch-slot", "op %d (%s): latch index %d outside %d latches", i, c.opc, c.fb, len(p.fbVars))
			}
		}
		if c.opc == vm.LUT && c.rom == nil {
			vs.add("plan/geometry", "op %d: LUT without a ROM", i)
		}
	}

	// Latch bookkeeping: init values and the name index.
	if len(p.fbInit) != len(p.fbVars) {
		vs.add("plan/latch-slot", "%d latch init values for %d latches", len(p.fbInit), len(p.fbVars))
	}
	for name, idx := range p.fbName {
		if idx < 0 || int(idx) >= len(p.fbVars) {
			vs.add("plan/latch-slot", "latch name %q maps to index %d outside %d latches", name, idx, len(p.fbVars))
		}
	}

	// Output ports read history like operands do.
	for i := range p.outSlots {
		o := &p.outSlots[i]
		if !alignedRegion(o.base) {
			vs.add("plan/ring-offset", "output %d: base %d is not an aligned ring region", i, o.base)
			continue
		}
		if o.delta < 0 || int(o.delta) > p.rmask {
			vs.add("plan/ring-offset", "output %d: alignment delay %d outside history depth %d", i, o.delta, p.rdepth)
			continue
		}
		if idx := idxOf(o.base); idx < len(p.ringNeed) && o.delta > p.ringNeed[idx] {
			vs.add("plan/ring-need", "output %d reads %d cycles back into region %d, deeper than ringNeed %d", i, o.delta, idx, p.ringNeed[idx])
		}
	}

	// plan/ring-need and plan/worklist: re-derive the read-back depths
	// and the seed/commit worklists from the plan's reads, element by
	// element.
	if len(p.ringNeed) != p.nOps {
		vs.add("plan/ring-need", "ringNeed holds %d entries for %d ops", len(p.ringNeed), p.nOps)
	} else {
		need := make([]int32, p.nOps)
		bump := func(base, delta int32) {
			if idx := idxOf(base); alignedRegion(base) && delta > need[idx] {
				need[idx] = delta
			}
		}
		for i := range p.plan {
			c := &p.plan[i]
			for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
				if o.ring {
					bump(o.base, o.off)
				}
			}
		}
		for i := range p.outSlots {
			bump(p.outSlots[i].base, p.outSlots[i].delta)
		}
		for idx := range need {
			if need[idx] != p.ringNeed[idx] {
				vs.add("plan/ring-need", "region %d: ringNeed %d, but the deepest actual read is %d", idx, p.ringNeed[idx], need[idx])
			}
		}
		vs = append(vs, verifyWorklists(p, need)...)
	}

	vs = append(vs, verifyBatchPartition(p)...)
	if cs := p.coneFor(); cs != nil {
		vs = append(vs, verifyCone(p, cs)...)
	}
	return vs
}

// deriveWrapMode is the verifier's independent statement of the wrap
// fusion contract: hw.wrap(tw.wrap(v)) == fw.wrap(v) exactly when the
// hardware wrap is at least as narrowing (hw.sh >= tw.sh, since a wrap
// keeps the low 64-sh bits); comparisons produce a bare 0/1 bit and
// take only the hardware wrap; LUT reads ROM contents verbatim; and a
// fused 64-bit wrap (sh 0) is the identity, so it demotes to none.
func deriveWrapMode(opc vm.Opcode, tw, hw wrapSpec) (uint8, wrapSpec) {
	var mode uint8
	var fw wrapSpec
	switch {
	case opc == vm.LUT:
		mode = wrapNone
	case opc == vm.SEQ || opc == vm.SNE || opc == vm.SLT || opc == vm.SLE:
		mode, fw = wrapSingle, hw
	case hw.sh >= tw.sh:
		mode, fw = wrapSingle, hw
	default:
		mode = wrapBoth
	}
	if mode == wrapSingle && fw.sh == 0 {
		mode, fw = wrapNone, wrapSpec{}
	}
	return mode, fw
}

// verifyWorklists re-derives the batch path's seed and commit lists
// from the recomputed read-back depths: a region appears iff somebody
// reads it (need > 0) and it is not an SNX (which never writes the
// ring); seeding additionally requires the op to sit inside the
// pipeline (stage < stages), since a stage-`stages` op has no in-flight
// prefix to restore.
func verifyWorklists(p *simPlan, need []int32) []Violation {
	var vs violations
	snx := make([]bool, p.nOps)
	for i := range p.plan {
		c := &p.plan[i]
		if c.opc == vm.SNX && int(c.slot)>>p.opShift < p.nOps {
			snx[int(c.slot)>>p.opShift] = true
		}
	}
	var seeds, commits []ringEnt
	for idx := 0; idx < p.nOps; idx++ {
		if need[idx] == 0 || snx[idx] {
			continue
		}
		e := ringEnt{idx: int32(idx), st: p.opStage[idx], need: need[idx]}
		if int(p.opStage[idx]) < p.stages {
			seeds = append(seeds, e)
		}
		commits = append(commits, e)
	}
	check := func(kind string, got, want []ringEnt) {
		if len(got) != len(want) {
			vs.add("plan/worklist", "%s worklist holds %d regions, want %d", kind, len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				vs.add("plan/worklist", "%s worklist entry %d is %+v, want %+v", kind, i, got[i], want[i])
			}
		}
	}
	check("seed", p.seeds, seeds)
	check("commit", p.commits, commits)
	return vs
}

// verifyBatchPartition re-derives the batch execution classes from the
// plan's dependence structure and checks batchA/B/C against them:
// together the three lists must hold every plan op exactly once, each
// in its re-derived class, in plan (topological) order, and no op may
// read a region its execution order has not produced yet — batchA runs
// first and may read only inputs and other batchA regions, batchB may
// additionally read batchA, batchC may read anything.
func verifyBatchPartition(p *simPlan) []Violation {
	var vs violations
	idxOf := func(base int32) int { return int(base) >> p.opShift }

	// Independent reachability: forward from latch reads, backward from
	// latch writes.
	const (
		classA = iota + 1
		classB
		classC
	)
	fromLPR := make([]bool, p.nOps)
	toSNX := make([]bool, p.nOps)
	reads := func(c *cop, mark []bool) bool {
		for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
			if o.ring && idxOf(o.base) < p.nOps && mark[idxOf(o.base)] {
				return true
			}
		}
		return false
	}
	for i := range p.plan {
		c := &p.plan[i]
		if idx := idxOf(c.slot); idx < p.nOps && (c.opc == vm.LPR || reads(c, fromLPR)) {
			fromLPR[idx] = true
		}
	}
	for i := len(p.plan) - 1; i >= 0; i-- {
		c := &p.plan[i]
		if idx := idxOf(c.slot); idx >= p.nOps || (c.opc != vm.SNX && !toSNX[idx]) {
			continue
		}
		for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
			if o.ring && idxOf(o.base) < p.nOps {
				toSNX[idxOf(o.base)] = true
			}
		}
	}
	wantClass := make([]uint8, p.nOps) // 0: input / no op
	for i := range p.plan {
		c := &p.plan[i]
		idx := idxOf(c.slot)
		if idx >= p.nOps {
			continue
		}
		switch {
		case c.opc == vm.LPR || c.opc == vm.SNX || (fromLPR[idx] && toSNX[idx]):
			wantClass[idx] = classB
		case fromLPR[idx]:
			wantClass[idx] = classC
		default:
			wantClass[idx] = classA
		}
	}

	// The three lists must be the plan, exactly once each, class by
	// class, with each entry bit-identical to its plan cop.
	planAt := make(map[int32]int, len(p.plan))
	for i := range p.plan {
		planAt[p.plan[i].slot] = i
	}
	seen := make([]bool, len(p.plan))
	total := 0
	for class, ops := range map[uint8][]cop{classA: p.batchA, classB: p.batchB, classC: p.batchC} {
		lastPos := -1
		for i := range ops {
			c := &ops[i]
			pos, ok := planAt[c.slot]
			if !ok {
				vs.add("plan/batch-partition", "batch class %d entry %d: slot %d matches no plan op", class, i, c.slot)
				continue
			}
			if seen[pos] {
				vs.add("plan/batch-partition", "plan op %d appears in more than one batch entry", pos)
				continue
			}
			seen[pos] = true
			total++
			if *c != p.plan[pos] {
				vs.add("plan/batch-partition", "batch class %d entry %d diverges from plan op %d", class, i, pos)
			}
			if got := wantClass[idxOf(c.slot)]; got != class {
				vs.add("plan/batch-partition", "plan op %d is in batch class %d, but its dependence structure derives class %d", pos, class, got)
			}
			if pos <= lastPos {
				vs.add("plan/batch-hazard", "batch class %d breaks topological order at entry %d (plan op %d after %d)", class, i, pos, lastPos)
			}
			lastPos = pos

			// Cross-class hazards: by the time this class runs, only
			// regions of earlier (or own, earlier-in-list) classes hold
			// lane values.
			for _, o := range [...]*cOperand{&c.a, &c.b, &c.c} {
				if !o.ring || idxOf(o.base) >= p.nOps {
					continue
				}
				src := wantClass[idxOf(o.base)]
				if src > class {
					vs.add("plan/batch-hazard", "plan op %d (class %d) reads region %d of later class %d", pos, class, idxOf(o.base), src)
				}
			}
		}
	}
	if total != len(p.plan) {
		vs.add("plan/batch-partition", "batch classes cover %d of %d plan ops", total, len(p.plan))
	}
	return vs
}

// verifyCone independently re-derives the closed-form feedback-cone
// conditions and checks a recognized coneSpec against them. The
// recognizer (backend_cone.go) and this checker state the same grammar
// in different shapes: recognizeCone pattern-matches while walking;
// this pass first computes latch/accumulate provenance for every cone
// region and then asserts each structural claim of the closed form
//
//	x' = wrap_ws(x ± e), optionally gated by an external select
//
// directly — single latch, one accumulate with an external addend,
// copies and at most one MUX in between, one pipeline stage, and no
// intermediate wrap narrower than the latch (the congruence that makes
// the prefix form exact).
func verifyCone(p *simPlan, cs *coneSpec) []Violation {
	var vs violations
	idxOf := func(base int32) int { return int(base) >> p.opShift }
	if len(p.batchB) == 0 {
		vs.add("plan/cone-grammar", "cone recognized on a plan with an empty feedback class")
		return vs
	}
	if cs.fb < 0 || int(cs.fb) >= len(p.fbVars) {
		vs.add("plan/cone-grammar", "cone latch index %d outside %d latches", cs.fb, len(p.fbVars))
		return vs
	}

	member := make(map[int]bool, len(p.batchB))
	for i := range p.batchB {
		member[idxOf(p.batchB[i].slot)] = true
	}
	// Provenance over cone regions: does the region's value derive from
	// the latch through width-only ops, and has it passed the accumulate?
	fromLatch := make(map[int]bool, len(p.batchB))
	fromAdd := make(map[int]bool, len(p.batchB))
	external := func(o *cOperand) bool { return !o.ring || !member[idxOf(o.base)] }

	var snxCount, accCount, muxCount int
	var lprRegions []int32
	var rest []cop
	for i := range p.batchB {
		c := &p.batchB[i]
		idx := idxOf(c.slot)
		if c.stage != cs.stage {
			vs.add("plan/cone-grammar", "cone op at region %d sits in stage %d, cone claims stage %d", idx, c.stage, cs.stage)
		}
		switch c.opc {
		case vm.LPR:
			if c.fb != cs.fb {
				vs.add("plan/cone-grammar", "cone LPR at region %d reads latch %d, cone claims latch %d", idx, c.fb, cs.fb)
			}
			lprRegions = append(lprRegions, int32(idx))
			fromLatch[idx] = true
			continue
		case vm.SNX:
			snxCount++
			if c.fb != cs.fb {
				vs.add("plan/cone-grammar", "cone SNX writes latch %d, cone claims latch %d", c.fb, cs.fb)
			}
			if c.tw != cs.snxTw {
				vs.add("plan/cone-grammar", "cone SNX wrap %+v disagrees with recorded latch width %+v", c.tw, cs.snxTw)
			}
			if external(&c.a) || !fromAdd[idxOf(c.a.base)] {
				vs.add("plan/cone-grammar", "cone SNX input does not pass through the accumulate op")
			}
			continue
		case vm.ADD, vm.SUB:
			accCount++
			if (c.opc == vm.SUB) != cs.sub {
				vs.add("plan/cone-grammar", "cone accumulate opcode %s disagrees with recorded sub=%v", c.opc, cs.sub)
			}
			aLatch := !external(&c.a) && fromLatch[idxOf(c.a.base)] && !fromAdd[idxOf(c.a.base)]
			bLatch := !external(&c.b) && fromLatch[idxOf(c.b.base)] && !fromAdd[idxOf(c.b.base)]
			switch {
			case aLatch && external(&c.b):
				if cs.ext != c.b {
					vs.add("plan/cone-grammar", "cone external addend %+v is not the accumulate's external operand %+v", cs.ext, c.b)
				}
			case bLatch && external(&c.a) && c.opc == vm.ADD:
				if cs.ext != c.a {
					vs.add("plan/cone-grammar", "cone external addend %+v is not the accumulate's external operand %+v", cs.ext, c.a)
				}
			default:
				vs.add("plan/cone-grammar", "cone accumulate is not latch ± external (x' = wrap(x ± e))")
			}
			fromLatch[idx] = true
			fromAdd[idx] = true
		case vm.LDC, vm.MOV, vm.CVT:
			if external(&c.a) {
				vs.add("plan/cone-grammar", "cone copy at region %d reads outside the cone", idx)
			} else {
				fromLatch[idx] = fromLatch[idxOf(c.a.base)]
				fromAdd[idx] = fromAdd[idxOf(c.a.base)]
			}
		case vm.MUX:
			muxCount++
			if !cs.hasMux {
				vs.add("plan/cone-grammar", "cone contains a MUX the spec does not record")
			}
			if !external(&c.a) {
				vs.add("plan/cone-grammar", "cone MUX select is not external")
			} else if cs.hasMux && cs.cond != c.a {
				vs.add("plan/cone-grammar", "cone MUX select %+v disagrees with recorded condition %+v", c.a, cs.cond)
			}
			bAdd := !external(&c.b) && fromAdd[idxOf(c.b.base)]
			cLatch := !external(&c.c) && fromLatch[idxOf(c.c.base)] && !fromAdd[idxOf(c.c.base)]
			bLatch := !external(&c.b) && fromLatch[idxOf(c.b.base)] && !fromAdd[idxOf(c.b.base)]
			cAdd := !external(&c.c) && fromAdd[idxOf(c.c.base)]
			switch {
			case bAdd && cLatch:
				if !cs.selAddOnTrue {
					vs.add("plan/cone-grammar", "cone MUX takes the accumulate on true, spec records the opposite")
				}
			case cAdd && bLatch:
				if cs.selAddOnTrue {
					vs.add("plan/cone-grammar", "cone MUX takes the accumulate on false, spec records the opposite")
				}
			default:
				vs.add("plan/cone-grammar", "cone MUX does not select between the accumulate chain and the latch")
			}
			fromLatch[idx] = true
			fromAdd[idx] = true
		default:
			vs.add("plan/cone-grammar", "op %s inside a recognized cone (faulting or exotic ops must keep the lane-serial path)", c.opc)
		}
		rest = append(rest, *c)

		// The congruence condition: no cone wrap narrower than the latch.
		if c.tw.sh > cs.snxTw.sh || c.hw.sh > cs.snxTw.sh {
			vs.add("plan/cone-grammar", "cone op at region %d wraps narrower than the latch (tw sh %d, hw sh %d, latch sh %d)", idx, c.tw.sh, c.hw.sh, cs.snxTw.sh)
		}
	}
	if snxCount != 1 {
		vs.add("plan/cone-grammar", "cone holds %d SNX ops, closed form requires exactly 1", snxCount)
	}
	if accCount != 1 {
		vs.add("plan/cone-grammar", "cone holds %d accumulate ops, closed form requires exactly 1", accCount)
	}
	if muxCount > 1 || (muxCount == 0 && cs.hasMux) {
		vs.add("plan/cone-grammar", "cone holds %d MUX ops, spec records hasMux=%v", muxCount, cs.hasMux)
	}
	if cs.hasMux && !external(&cs.cond) {
		vs.add("plan/cone-grammar", "recorded MUX condition reads a cone region")
	}
	if !external(&cs.ext) {
		vs.add("plan/cone-grammar", "recorded external addend reads a cone region")
	}
	if len(lprRegions) == 0 {
		vs.add("plan/cone-grammar", "cone has no latch read")
	}
	if len(lprRegions) != len(cs.lprs) {
		vs.add("plan/cone-grammar", "cone spec records %d LPR regions, plan holds %d", len(cs.lprs), len(lprRegions))
	} else {
		for i := range lprRegions {
			if lprRegions[i] != cs.lprs[i] {
				vs.add("plan/cone-grammar", "cone spec LPR region %d is %d, plan holds %d", i, cs.lprs[i], lprRegions[i])
			}
		}
	}
	if len(rest) != len(cs.rest) {
		vs.add("plan/cone-grammar", "cone spec materializes %d ops, plan's non-latch cone holds %d", len(cs.rest), len(rest))
	} else {
		for i := range rest {
			if rest[i] != cs.rest[i] {
				vs.add("plan/cone-grammar", "cone spec rest op %d diverges from the plan's cone op", i)
			}
		}
	}
	return vs
}

// verifyPlanDatapath checks the plan against the Datapath it claims to
// compile: op-by-op opcode/slot/stage correspondence, wrap masks
// congruent with the declared semantic and inferred hardware types
// (mod 2^w — makeWrap keeps exactly Bits low bits), I/O port wiring and
// latch initialization.
func verifyPlanDatapath(p *simPlan, d *Datapath) []Violation {
	var vs violations
	if p.nOps != len(d.Ops) {
		vs.add("plan/geometry", "plan covers %d ops, data path holds %d", p.nOps, len(d.Ops))
		return vs
	}
	if p.stages != d.Stages {
		vs.add("plan/geometry", "plan compiled for %d stages, data path has %d", p.stages, d.Stages)
	}
	if p.latency != d.Latency() {
		vs.add("plan/geometry", "plan latency %d, data path latency %d", p.latency, d.Latency())
	}
	for i, op := range d.Ops {
		if int32(op.Stage) != p.opStage[i] {
			vs.add("plan/geometry", "op %d: opStage %d, data path stage %d", i, p.opStage[i], op.Stage)
		}
	}
	pos := 0
	for i, op := range d.Ops {
		if op.Node.Kind == InputNode {
			continue
		}
		if pos >= len(p.plan) {
			vs.add("plan/geometry", "plan ends after %d cops; data path has more real ops", len(p.plan))
			break
		}
		c := &p.plan[pos]
		pos++
		if c.opc != op.Instr.Op {
			vs.add("plan/geometry", "plan op %d compiles %s, data path op %d is %s", pos-1, c.opc, i, op.Instr.Op)
			continue
		}
		if c.slot != int32(i*p.rdepth) {
			vs.add("plan/geometry", "plan op %d: slot %d, want region of data-path op %d", pos-1, c.slot, i)
		}
		if want := makeWrap(op.Instr.Typ); c.tw != want {
			vs.add("plan/wrap-congruence", "plan op %d (%s): semantic wrap %+v not congruent with declared type %v", pos-1, c.opc, c.tw, op.Instr.Typ)
		}
		if want := makeWrap(op.HardwareType()); c.hw != want {
			vs.add("plan/wrap-congruence", "plan op %d (%s): hardware wrap %+v not congruent with inferred width %v", pos-1, c.opc, c.hw, op.HardwareType())
		}
	}
	if pos != len(p.plan) {
		vs.add("plan/geometry", "plan holds %d cops, data path has %d real ops", len(p.plan), pos)
	}
	if len(p.inSlots) != len(d.Inputs) {
		vs.add("plan/geometry", "plan routes %d inputs, data path has %d", len(p.inSlots), len(d.Inputs))
	} else {
		for i, port := range d.Inputs {
			if want := makeWrap(port.Var.Type); p.inSlots[i].w != want {
				vs.add("plan/wrap-congruence", "input %d (%s): wrap %+v not congruent with declared type %v", i, port.Var.Name, p.inSlots[i].w, port.Var.Type)
			}
		}
	}
	if len(p.outSlots) != len(d.Outputs) {
		vs.add("plan/geometry", "plan reads %d outputs, data path has %d", len(p.outSlots), len(d.Outputs))
	} else {
		lat := d.Latency()
		for i, port := range d.Outputs {
			def := d.DefOf[port.Reg]
			if def == nil {
				continue
			}
			if want := int32(lat - def.Stage); p.outSlots[i].delta != want {
				vs.add("plan/ring-offset", "output %d (%s): alignment delay %d, want %d (latency %d, producer stage %d)",
					i, port.Var.Name, p.outSlots[i].delta, want, lat, def.Stage)
			}
		}
	}
	for i, fb := range d.Feedbacks {
		if i >= len(p.fbVars) {
			vs.add("plan/latch-slot", "data-path feedback %d (%s) has no latch slot", i, fb.State.Name)
			continue
		}
		if p.fbVars[i] != fb.State {
			vs.add("plan/latch-slot", "latch %d bound to %s, data path declares %s", i, p.fbVars[i].Name, fb.State.Name)
		}
		if want := fb.State.Type.Wrap(fb.Init); p.fbInit[i] != want {
			vs.add("plan/latch-slot", "latch %d (%s): init %d not wrapped to declared width (want %d)", i, fb.State.Name, p.fbInit[i], want)
		}
	}
	return vs
}
