package dp

import "roccc/internal/vm"

// backend_cone.go vectorizes the feedback cone. The batch path's one
// serialization point is simPlan.batchB: iteration k's latch read (LPR)
// depends on iteration k-1's latch write (SNX), so batchCone walks the
// cone lane by lane, dragging the whole op list through every lane.
// Most accumulator kernels, though, have a cone of one exact shape —
//
//	x' = wrap(x ± e)            (optionally gated by an external condition)
//
// an ADD/SUB of the latch with a value from outside the cone, passed to
// the SNX through width-only copies and at most one MUX whose other arm
// re-selects the latch. For that shape the recurrence has a closed
// form: truncating wraps of width >= the latch width ws are congruences
// mod 2^ws, so
//
//	x_k = wrap_ws(x_0 + sum of the e's the selector admitted)
//
// and the loop-carried dependence collapses to one integer add per lane
// on a raw (unwrapped) accumulator — a prefix sum. runCone materializes
// the latch value per lane in that single pass; every other cone op
// then runs op-major exactly like batchA/batchC, restoring the fused
// lane kernels mul_acc's accumulate was locked out of.
//
// Bit-identity with batchCone (and so with the serial core) holds for
// any latch value, including an out-of-range initial state: until the
// first valid lane commits, the latch is passed through unwrapped,
// exactly as LPR reads it.

// coneSpec is a recognized closed-form feedback cone. It is compiled
// once per plan (simPlan.coneFor) and shared by every Sim; the op
// copies inside rest keep plan (topological) order so the op-major
// materialization pass can reuse batchOps unchanged.
type coneSpec struct {
	fb    int32    // the cone's single feedback latch
	stage int32    // shared pipeline stage of every cone op
	snxTw wrapSpec // the latch width ws: the SNX's semantic wrap
	sub   bool     // the accumulate op is SUB (x - e)
	// ext is the accumulate op's external operand e: an immediate or a
	// lane region outside the cone (batchA or an input/seeded region,
	// already materialized when the cone runs).
	ext cOperand
	// cond is the MUX select when hasMux — external, like ext. The add
	// arm is taken when (cond != 0) == selAddOnTrue; the other arm
	// re-selects the latch, so the lane commits x unchanged.
	cond         cOperand
	hasMux       bool
	selAddOnTrue bool
	lprs         []int32 // lane-region indices of the cone's LPR ops
	rest         []cop   // non-latch cone ops, for op-major materialization
}

// coneFor returns the plan's recognized closed-form cone, or nil when
// the feedback cone (if any) does not match the closed form and must
// keep the lane-serial batchCone path.
func (p *simPlan) coneFor() *coneSpec {
	p.coneOnce.Do(func() { p.cone = recognizeCone(p) })
	return p.cone
}

// HasClosedFormCone reports whether the plan's feedback cone (if any)
// was recognized in closed form, i.e. whether the cone backends can
// vectorize this kernel's accumulate instead of serializing lanes.
// Exposed for backend statistics and the differential tests.
func (s *Sim) HasClosedFormCone() bool { return s.p.coneFor() != nil }

// Operand provenance tags for the recognizer's single forward walk.
const (
	tagX   uint8 = 1 << iota // derives from the latch through copies only
	tagAdd                   // has passed through the accumulate op
)

// recognizeCone matches simPlan.batchB against the closed-form grammar:
// one latch (>= 1 LPR, exactly one SNX), exactly one ADD/SUB of the
// latch with an external operand, width-only copies (MOV/CVT/LDC), at
// most one MUX selecting between the add chain and the latch on an
// external condition, everything in one pipeline stage, and every
// intermediate wrap at least as wide as the latch (so the wraps are
// congruences mod 2^ws and the prefix form is exact). Anything else —
// multi-latch cones, cross-latch reads, faulting ops, narrowing
// intermediates — returns nil and keeps the lane-serial path.
func recognizeCone(p *simPlan) *coneSpec {
	b := p.batchB
	if len(b) == 0 {
		return nil
	}
	idxOf := func(slot int32) int32 { return slot >> p.opShift }
	member := make(map[int32]bool, len(b))
	for i := range b {
		member[idxOf(b[i].slot)] = true
	}
	// tags classifies cone ops already walked; an operand reference is
	// internal when it reads a cone region (topological order guarantees
	// the def was walked first — an untagged member resolves to tag 0,
	// which every consumer check rejects).
	tags := make(map[int32]uint8, len(b))
	internal := func(o *cOperand) (uint8, bool) {
		if !o.ring || !member[idxOf(o.base)] {
			return 0, false
		}
		return tags[idxOf(o.base)], true
	}
	external := func(o *cOperand) bool {
		return !o.ring || !member[idxOf(o.base)]
	}
	cs := &coneSpec{fb: -1, stage: -1}
	var snx, acc *cop
	for i := range b {
		c := &b[i]
		if cs.stage < 0 {
			cs.stage = c.stage
		} else if c.stage != cs.stage {
			return nil // multi-stage cone: lane indexing is no longer uniform
		}
		idx := idxOf(c.slot)
		switch c.opc {
		case vm.LPR:
			if cs.fb >= 0 && cs.fb != c.fb {
				return nil // two latches feeding one cone
			}
			cs.fb = c.fb
			cs.lprs = append(cs.lprs, idx)
			tags[idx] = tagX
			continue
		case vm.SNX:
			if snx != nil || (cs.fb >= 0 && cs.fb != c.fb) {
				return nil
			}
			cs.fb = c.fb
			if t, ok := internal(&c.a); !ok || t&tagAdd == 0 {
				return nil // the staged value must come through the add
			}
			snx = c
			cs.snxTw = c.tw
			continue
		case vm.ADD, vm.SUB:
			if acc != nil {
				return nil // a second adder breaks x' = wrap(x +- e)
			}
			ta, aInt := internal(&c.a)
			tb, bInt := internal(&c.b)
			switch {
			case aInt && ta == tagX && !bInt:
				cs.ext = c.b
			case bInt && tb == tagX && !aInt && c.opc == vm.ADD:
				cs.ext = c.a
			default:
				return nil
			}
			cs.sub = c.opc == vm.SUB
			acc = c
			tags[idx] = tagX | tagAdd
		case vm.LDC, vm.MOV, vm.CVT:
			t, ok := internal(&c.a)
			if !ok {
				return nil // an external copy cannot be latch-reachable
			}
			tags[idx] = t
		case vm.MUX:
			if cs.hasMux || !external(&c.a) {
				return nil
			}
			tb, bInt := internal(&c.b)
			tc, cInt := internal(&c.c)
			switch {
			case bInt && cInt && tb&tagAdd != 0 && tc == tagX:
				cs.selAddOnTrue = true
			case bInt && cInt && tc&tagAdd != 0 && tb == tagX:
				cs.selAddOnTrue = false
			default:
				return nil
			}
			cs.hasMux = true
			cs.cond = c.a
			tags[idx] = tagX | tagAdd
		default:
			return nil // faulting or exotic op inside the cone
		}
		cs.rest = append(cs.rest, *c)
	}
	if snx == nil || acc == nil || len(cs.lprs) == 0 {
		return nil
	}
	// The congruence argument needs every intermediate wrap at least as
	// wide as the latch: wrap_w(y) = y (mod 2^ws) for w >= ws, whatever
	// the signedness, so interleaved wraps and adds commute under the
	// final wrap_ws.
	for i := range cs.rest {
		c := &cs.rest[i]
		if c.tw.sh > cs.snxTw.sh || c.hw.sh > cs.snxTw.sh {
			return nil
		}
	}
	return cs
}

// runCone executes a recognized cone over one chunk, bit-identically to
// batchCone: the prefix pass materializes the latch value per lane into
// the LPR regions and folds the recurrence into a raw accumulator; the
// remaining cone ops then run op-major (they cannot fault, so the
// returned error is always nil in practice). The final latch value
// lands in batchState, which commitChunk copies out exactly as for the
// lane-serial cone.
//
//roccc:hotpath
func (s *Sim) runCone(cs *coneSpec, n int, lanes []int64, lv []bool, laneN int, fns []laneFn) error {
	p := s.p
	st := s.batchState[:len(s.state)]
	copy(st, s.state)
	k0 := p.stages - int(cs.stage)
	k1 := k0 + n
	c := laneCtx{lanes: lanes, laneN: laneN, sh: p.opShift}
	ext := c.operand(&cs.ext)
	var cond laneOperand
	if cs.hasMux {
		cond = c.operand(&cs.cond)
	}
	tw := cs.snxTw
	lpr0 := lanes[int(cs.lprs[0])*laneN : (int(cs.lprs[0])+1)*laneN]
	acc := st[cs.fb]
	// touched tracks whether any valid lane has committed yet: until
	// then the latch holds its (possibly unwrapped) pre-chunk value and
	// must be passed through raw, exactly as LPR reads it.
	touched := false
	for k := k0; k < k1; k++ {
		x := acc
		if touched {
			x = tw.wrap(acc)
		}
		lpr0[k] = x
		if !lv[k] {
			continue // bubbles never commit the latch
		}
		touched = true
		if cs.hasMux && (cond.at(k) != 0) != cs.selAddOnTrue {
			continue // the MUX re-selected the latch: x' = wrap(x)
		}
		if cs.sub {
			acc -= ext.at(k)
		} else {
			acc += ext.at(k)
		}
	}
	for _, li := range cs.lprs[1:] {
		base := int(li) * laneN
		copy(lanes[base+k0:base+k1], lpr0[k0:k1])
	}
	if touched {
		st[cs.fb] = tw.wrap(acc)
	} else {
		st[cs.fb] = acc
	}
	if fns != nil {
		if !runLaneFns(fns, lanes, lv, n) {
			return errBatchFault
		}
		return nil
	}
	return s.batchOps(cs.rest, n, lanes, lv, laneN)
}
