package dp

import (
	"fmt"
	"sort"

	"roccc/internal/cfg"
	"roccc/internal/hir"
	"roccc/internal/ssa"
	"roccc/internal/vm"
)

// Build constructs the data path from a kernel's SSA-form CFG. The
// graph must already be in SSA form (ssa.Convert); Build is deterministic
// and purely structural — pipelining and width inference run afterwards
// (Pipeline, InferWidths).
func Build(k *hir.Kernel, g *cfg.Graph) (*Datapath, error) {
	if err := ssa.Check(g); err != nil {
		return nil, fmt.Errorf("dp: graph is not in SSA form: %v", err)
	}
	d := &Datapath{
		Name:  k.Name,
		Graph: g,
		DefOf: map[vm.Reg]*Op{},
	}
	b := &dpBuilder{d: d, g: g}

	// Input node (level 0): one pseudo op per input port ("all the input
	// operands are copied to the entry of the data flow").
	inNode := b.newNode(InputNode, 0, nil)
	for _, p := range g.Routine.Inputs {
		op := b.newOp(inNode, &vm.Instr{Op: vm.MOV, Dst: p.Reg, Typ: p.Var.Type})
		d.DefOf[p.Reg] = op
		d.Inputs = append(d.Inputs, PortW{Var: p.Var, Reg: p.Reg, Width: p.Var.Type.Bits})
	}

	// Level assignment for blocks; joins with phis reserve an extra level
	// for their mux/pipe nodes.
	rpo := g.ReversePostOrder()
	idom := g.Dominators()
	blockLevel := map[*cfg.Block]int{}
	muxLevel := map[*cfg.Block]int{}
	for _, blk := range rpo {
		base := 0
		for _, p := range blk.Preds {
			if lv, ok := blockLevel[p]; ok && lv > base {
				base = lv
			}
		}
		if len(blk.Phis) > 0 {
			muxLevel[blk] = base + 1
			blockLevel[blk] = base + 2
		} else {
			blockLevel[blk] = base + 1
		}
	}

	// Create nodes and ops in level order.
	for _, blk := range rpo {
		if len(blk.Phis) > 0 {
			if err := b.buildJoin(blk, idom, muxLevel[blk]); err != nil {
				return nil, err
			}
		}
		if len(blk.Instrs) == 0 {
			continue // null node (§4.2.2 builds data path for non-null nodes)
		}
		node := b.newNode(SoftNode, blockLevel[blk], blk)
		for _, in := range blk.Instrs {
			op := b.newOp(node, in)
			if in.Op.HasDst() {
				d.DefOf[in.Dst] = op
			}
		}
	}

	// Pipe nodes: copy live-through values so every definition/reference
	// pair is adjoining across the mux level (Fig. 6 node 6).
	b.insertPipeCopies(muxLevel)

	// Output ports.
	for _, p := range g.Routine.Outputs {
		if d.DefOf[p.Reg] == nil {
			return nil, fmt.Errorf("dp: output %s (reg %s) has no definition", p.Var.Name, p.Reg)
		}
		d.Outputs = append(d.Outputs, PortW{Var: p.Var, Reg: p.Reg, Width: p.Var.Type.Bits})
	}

	// Feedback pairs (Fig. 7): match LPR and SNX ops by state variable.
	inits := map[*hir.Var]int64{}
	for _, fb := range k.Feedback {
		inits[fb.Var] = fb.Init
	}
	lprs := map[*hir.Var][]*Op{}
	snxs := map[*hir.Var]*Op{}
	for _, op := range d.Ops {
		switch op.Instr.Op {
		case vm.LPR:
			lprs[op.Instr.State] = append(lprs[op.Instr.State], op)
		case vm.SNX:
			snxs[op.Instr.State] = op
		}
	}
	for state, readers := range lprs {
		snx, ok := snxs[state]
		if !ok {
			return nil, fmt.Errorf("dp: LPR of %s has no matching SNX", state.Name)
		}
		d.Feedbacks = append(d.Feedbacks, &Feedback{State: state, LPRs: readers, SNX: snx, Init: inits[state]})
	}
	sort.Slice(d.Feedbacks, func(i, j int) bool {
		return d.Feedbacks[i].State.Name < d.Feedbacks[j].State.Name
	})

	b.sortOps()
	return d, nil
}

type dpBuilder struct {
	d      *Datapath
	g      *cfg.Graph
	nextOp int
}

func (b *dpBuilder) newNode(kind NodeKind, level int, blk *cfg.Block) *Node {
	n := &Node{ID: len(b.d.Nodes) + 1, Kind: kind, Level: level, Block: blk}
	b.d.Nodes = append(b.d.Nodes, n)
	return n
}

func (b *dpBuilder) newOp(n *Node, in *vm.Instr) *Op {
	b.nextOp++
	// The op owns a private copy: pipe-copy insertion rewrites operand
	// registers, and the CFG (still used for soft-node software
	// execution) must stay untouched.
	op := &Op{ID: b.nextOp, Instr: in.Clone(), Node: n}
	n.Ops = append(n.Ops, op)
	b.d.Ops = append(b.d.Ops, op)
	return op
}

// dominatesOrEq reports whether a dominates b (or a == b).
func dominatesOrEq(idom map[*cfg.Block]*cfg.Block, a, b *cfg.Block) bool {
	for i := 0; i < 1000; i++ {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
	return false
}

// buildJoin converts the phis of join block blk into a mux node. The
// select signal is the branch condition of the nearest dominating branch
// block; phi operands are assigned to the true/false mux inputs by
// checking which branch-successor dominates each predecessor.
func (b *dpBuilder) buildJoin(blk *cfg.Block, idom map[*cfg.Block]*cfg.Block, level int) error {
	if len(blk.Preds) != 2 {
		return fmt.Errorf("dp: join block %d has %d predecessors (structured if/else expected)", blk.ID, len(blk.Preds))
	}
	branch := idom[blk]
	for branch != nil && branch.BranchCond == nil {
		next, ok := idom[branch]
		if !ok || next == branch {
			return fmt.Errorf("dp: join block %d has no dominating branch", blk.ID)
		}
		branch = next
	}
	cond := branch.BranchCond.Srcs[0]
	trueSucc := branch.Succs[0] // BTR: taken on true
	falseSucc := branch.Succs[1]
	if branch.BranchCond.Op == vm.BFL {
		trueSucc, falseSucc = falseSucc, trueSucc
	}
	sideOf := func(p *cfg.Block) (bool, error) {
		if p == branch {
			// Direct edge from the branch block to the join.
			if blk == trueSucc {
				return true, nil
			}
			if blk == falseSucc {
				return false, nil
			}
			return false, fmt.Errorf("dp: cannot classify direct edge into join %d", blk.ID)
		}
		if dominatesOrEq(idom, trueSucc, p) {
			return true, nil
		}
		if dominatesOrEq(idom, falseSucc, p) {
			return false, nil
		}
		return false, fmt.Errorf("dp: predecessor %d of join %d is on neither branch side", p.ID, blk.ID)
	}
	side0, err := sideOf(blk.Preds[0])
	if err != nil {
		return err
	}
	node := b.newNode(MuxNode, level, blk)
	for _, phi := range blk.Phis {
		tv, fv := phi.Srcs[0], phi.Srcs[1]
		if !side0 {
			tv, fv = fv, tv
		}
		mux := &vm.Instr{Op: vm.MUX, Dst: phi.Dst, Srcs: []vm.Operand{cond, tv, fv}, Typ: phi.Typ}
		op := b.newOp(node, mux)
		b.d.DefOf[phi.Dst] = op
	}
	return nil
}

// insertPipeCopies adds pipe nodes at every mux level: any register
// defined below that level and referenced above it gets a copy, so that
// "a virtual register's definition and reference [are] adjoining in the
// data flow" (§4.2.2).
func (b *dpBuilder) insertPipeCopies(muxLevel map[*cfg.Block]int) {
	// Collect mux levels in ascending order.
	var levels []int
	for _, lv := range muxLevel {
		levels = append(levels, lv)
	}
	sort.Ints(levels)
	for _, lv := range levels {
		// Registers used strictly above lv but defined strictly below lv.
		var pipeRegs []vm.Reg
		seen := map[vm.Reg]bool{}
		for _, op := range b.d.Ops {
			if op.Node.Level <= lv {
				continue
			}
			for _, r := range op.Instr.Uses() {
				def := b.d.DefOf[r]
				if def == nil || def.Node.Level >= lv || seen[r] {
					continue
				}
				seen[r] = true
				pipeRegs = append(pipeRegs, r)
			}
		}
		// Output ports referenced above every level also hold defs; they
		// are reads at the very end and handled naturally since their
		// defining MOVs are ops.
		if len(pipeRegs) == 0 {
			continue
		}
		sort.Slice(pipeRegs, func(i, j int) bool { return pipeRegs[i] < pipeRegs[j] })
		node := b.newNode(PipeNode, lv, nil)
		rt := b.g.Routine
		for _, r := range pipeRegs {
			rt.NumRegs++
			nr := vm.Reg(rt.NumRegs)
			rt.RegType[nr] = rt.RegType[r]
			cp := &vm.Instr{Op: vm.MOV, Dst: nr, Srcs: []vm.Operand{vm.R(r)}, Typ: rt.RegType[r]}
			op := b.newOp(node, cp)
			b.d.DefOf[nr] = op
			// Rewrite uses above the level.
			for _, user := range b.d.Ops {
				if user.Node.Level <= lv || user == op {
					continue
				}
				for i := range user.Instr.Srcs {
					s := &user.Instr.Srcs[i]
					if !s.IsImm && s.Reg == r {
						s.Reg = nr
					}
				}
			}
		}
	}
}

// sortOps orders d.Ops topologically: by node level, then by data
// dependence inside a level (ASAP), breaking ties by op ID for
// determinism.
func (b *dpBuilder) sortOps() {
	d := b.d
	depth := map[*Op]int{}
	var depthOf func(op *Op) int
	depthOf = func(op *Op) int {
		if v, ok := depth[op]; ok {
			return v
		}
		depth[op] = 0 // breaks cycles defensively; the DAG has none
		max := 0
		for _, r := range op.Instr.Uses() {
			if def := d.DefOf[r]; def != nil && def != op {
				if dd := depthOf(def) + 1; dd > max {
					max = dd
				}
			}
		}
		depth[op] = max
		return max
	}
	for _, op := range d.Ops {
		depthOf(op)
	}
	sort.SliceStable(d.Ops, func(i, j int) bool {
		a, bb := d.Ops[i], d.Ops[j]
		if depth[a] != depth[bb] {
			return depth[a] < depth[bb]
		}
		return a.ID < bb.ID
	})
}
