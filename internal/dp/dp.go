// Package dp implements the paper's central contribution: data-path
// generation (§4.2). An SSA-form CFG is turned into a directed acyclic
// graph of hardware operations grouped into nodes:
//
//   - soft nodes — one per CFG basic block; "the soft nodes, by
//     themselves, will have the same behavior on a CPU compared with the
//     whole data path on a FPGA";
//   - mux nodes — hard nodes realizing the SSA phis of a join block
//     ("to parallelize alternative branches, the compiler adds a new mux
//     node between alternative branch nodes and their common successor
//     node", Fig. 6 node 7);
//   - pipe nodes — hard nodes copying live variables from the branch
//     parent to the common successor (Fig. 6 node 6).
//
// The data path is then pipelined by automatic latch placement driven by
// per-operation delay estimates (§4.2.3), and internal signal bit widths
// are inferred from port sizes and opcodes (§4.2.4, §5).
package dp

import (
	"fmt"
	"strings"
	"sync"

	"roccc/internal/cc"
	"roccc/internal/cfg"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

// NodeKind classifies data-path nodes.
type NodeKind int

// Node kinds. Soft nodes mirror CFG blocks; mux and pipe nodes are the
// paper's "hard nodes" — "they only appear in hardware and have no
// equivalence in software".
const (
	SoftNode NodeKind = iota
	MuxNode
	PipeNode
	InputNode
	OutputNode
)

func (k NodeKind) String() string {
	switch k {
	case SoftNode:
		return "soft"
	case MuxNode:
		return "mux"
	case PipeNode:
		return "pipe"
	case InputNode:
		return "input"
	case OutputNode:
		return "output"
	}
	return "node"
}

// IsHard reports whether the node kind is hardware-only.
func (k NodeKind) IsHard() bool { return k == MuxNode || k == PipeNode }

// Node is a group of operations at one level of the data path.
type Node struct {
	ID    int
	Kind  NodeKind
	Level int
	Block *cfg.Block // for soft nodes
	Ops   []*Op
}

// Op is a single data-path operation (one instruction placed in a node,
// §4.2.2: "Each instruction that goes to hardware is assigned a location
// in the data path").
type Op struct {
	ID    int
	Instr *vm.Instr
	Node  *Node

	// Scheduling results (§4.2.3).
	Stage   int     // pipeline stage index
	TEnd    float64 // combinational end time within the stage (ns)
	Latched bool    // a pipeline latch follows this op's output

	// Width inference results (§4.2.4).
	Width  int
	Signed bool
}

// Dst returns the op's defining register (0 if none).
func (o *Op) Dst() vm.Reg {
	if o.Instr.Op.HasDst() {
		return o.Instr.Dst
	}
	return 0
}

// String renders the op.
func (o *Op) String() string {
	return fmt.Sprintf("op%d[%s stage%d w%d] %s", o.ID, o.Node.Kind, o.Stage, o.Width,
		strings.TrimSpace(o.Instr.String()))
}

// PortW is a data-path port with its hardware width.
type PortW struct {
	Var   *hir.Var
	Reg   vm.Reg
	Width int
}

// Feedback describes one feedback latch (Fig. 7): one SNX writer and
// every LPR reader of the same state (conditional updates produce one
// LPR per branch). All LPRs must share the SNX's pipeline stage so the
// latch carries values between consecutive iterations.
type Feedback struct {
	State *hir.Var
	LPRs  []*Op
	SNX   *Op
	Init  int64
}

// Datapath is the generated data path for one kernel iteration.
type Datapath struct {
	Name    string
	Graph   *cfg.Graph
	Nodes   []*Node
	Ops     []*Op // topologically ordered
	Inputs  []PortW
	Outputs []PortW
	// DefOf maps each SSA register to its producing op (inputs map to
	// the pseudo input ops).
	DefOf map[vm.Reg]*Op
	// Feedbacks lists the LPR/SNX latch pairs.
	Feedbacks []*Feedback
	// Stages is the pipeline depth (number of latch levels + 1).
	Stages int
	// Period is the target clock period used during latch placement, and
	// MaxStageDelay the worst realized combinational stage delay (ns).
	Period        float64
	MaxStageDelay float64

	// planOnce/plan cache the compiled simulator execution plan
	// (sim.go): built on the first NewSim over this data path and shared
	// by every later Sim, so sweep-style repeated NewSim calls skip
	// recompilation. Keyed by identity of the Datapath itself — the
	// structure is immutable once built.
	planOnce sync.Once
	plan     *simPlan
}

// simPlanFor returns the data path's compiled simulator plan, compiling
// it on first use.
func (d *Datapath) simPlanFor() *simPlan {
	d.planOnce.Do(func() { d.plan = compileSimPlan(d) })
	return d.plan
}

// NumOps returns the number of real compute ops (excluding input pseudo
// ops).
func (d *Datapath) NumOps() int {
	n := 0
	for _, op := range d.Ops {
		if op.Node.Kind != InputNode {
			n++
		}
	}
	return n
}

// NodesOfKind returns all nodes of kind k.
func (d *Datapath) NodesOfKind(k NodeKind) []*Node {
	var out []*Node
	for _, n := range d.Nodes {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// OpType returns the semantic integer type of the op's result.
func (o *Op) OpType() cc.IntType { return o.Instr.Typ }

// HardwareType returns the inferred hardware signal type (width-narrowed).
func (o *Op) HardwareType() cc.IntType {
	return cc.IntType{Bits: o.Width, Signed: o.Signed}
}

// String renders a node summary.
func (n *Node) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d (%s, level %d): %d ops", n.ID, n.Kind, n.Level, len(n.Ops))
	return b.String()
}
