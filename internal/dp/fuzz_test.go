package dp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// fuzz_test.go generates random straight-line/branching C kernels and
// checks the whole compilation pipeline: the pipelined data-path
// simulation must match the C interpreter bit-for-bit on random inputs,
// across several pipeline targets. This is the strongest end-to-end
// property in the suite — it exercises the front end, SSA, mux/pipe
// construction, width inference and latch placement together.

type kernelGen struct {
	rng   *rand.Rand
	names []string
	decls []string
	stmts []string
	tmp   int
	// divisors, when non-empty, lets expr() emit / and % with one of
	// these names (kernel input params) as the divisor — the shape that
	// faults on zero and exercises the bubble/poison semantics.
	divisors []string
}

func (g *kernelGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return g.names[g.rng.Intn(len(g.names))]
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(65)-32)
		default:
			return g.names[g.rng.Intn(len(g.names))]
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[g.rng.Intn(len(ops))]
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("((%s) >> %d)", a, g.rng.Intn(5))
	case 1:
		if len(g.divisors) > 0 && g.rng.Intn(2) == 0 {
			d := g.divisors[g.rng.Intn(len(g.divisors))]
			return fmt.Sprintf("((%s) %s (%s))", a, []string{"/", "%"}[g.rng.Intn(2)], d)
		}
		return fmt.Sprintf("((%s) << %d)", a, g.rng.Intn(3))
	case 2:
		return fmt.Sprintf("((%s) %s (%s) ? (%s) : (%s))",
			a, []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)], b,
			g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("((%s) %s (%s))", a, op, b)
	}
}

func (g *kernelGen) stmt(depth int) {
	g.tmp++
	name := fmt.Sprintf("t%d", g.tmp)
	if depth > 0 && g.rng.Intn(4) == 0 {
		cond := g.expr(1)
		g.decls = append(g.decls, fmt.Sprintf("\tint %s;", name))
		g.stmts = append(g.stmts, fmt.Sprintf("\tif (%s) { %s = %s; } else { %s = %s; }",
			cond, name, g.expr(depth-1), name, g.expr(depth-1)))
	} else {
		g.decls = append(g.decls, fmt.Sprintf("\tint %s;", name))
		g.stmts = append(g.stmts, fmt.Sprintf("\t%s = %s;", name, g.expr(depth)))
	}
	g.names = append(g.names, name)
}

// generate builds a random kernel with nIn inputs and nOut outputs.
func generateKernel(rng *rand.Rand, nIn, nStmts, nOut int) (string, int) {
	return generateKernelDiv(rng, nIn, nStmts, nOut, false)
}

// generateKernelDiv is generateKernel with optional division/modulo by
// raw input parameters, so random inputs (and bubbles' zero inputs) can
// hit divide-by-zero.
func generateKernelDiv(rng *rand.Rand, nIn, nStmts, nOut int, withDiv bool) (string, int) {
	g := &kernelGen{rng: rng}
	var params []string
	for i := 0; i < nIn; i++ {
		p := fmt.Sprintf("x%d", i)
		params = append(params, "int "+p)
		g.names = append(g.names, p)
		if withDiv {
			g.divisors = append(g.divisors, p)
		}
	}
	for i := 0; i < nOut; i++ {
		params = append(params, fmt.Sprintf("int* o%d", i))
	}
	for i := 0; i < nStmts; i++ {
		g.stmt(2 + rng.Intn(2))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "void k(%s) {\n", strings.Join(params, ", "))
	for _, d := range g.decls {
		b.WriteString(d + "\n")
	}
	for _, s := range g.stmts {
		b.WriteString(s + "\n")
	}
	for i := 0; i < nOut; i++ {
		fmt.Fprintf(&b, "\t*o%d = %s;\n", i, g.names[len(g.names)-1-i%len(g.names)])
	}
	b.WriteString("}\n")
	return b.String(), nOut
}

func TestFuzzPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20240610))
	const kernels = 40
	for ki := 0; ki < kernels; ki++ {
		src, nOut := generateKernel(rng, 2+rng.Intn(3), 3+rng.Intn(5), 1+rng.Intn(2))
		period := []float64{2.5, 5, 1000}[ki%3]
		res, err := core.CompileSource(src, "k", core.Options{
			Optimize: ki%2 == 0,
			PeriodNs: period,
		})
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", ki, err, src)
		}
		// Reference interpreter.
		file, err := cc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cc.Analyze(file)
		if err != nil {
			t.Fatal(err)
		}
		ip := cc.NewInterp(info)

		sim := dp.NewSim(res.Datapath)
		nIn := len(res.Datapath.Inputs)
		const vectors = 24
		iters := make([][]int64, vectors)
		for vi := range iters {
			in := make([]int64, nIn)
			for j := range in {
				in[j] = rng.Int63n(1<<12) - 1<<11
			}
			iters[vi] = in
		}
		outs, err := sim.Run(iters)
		if err != nil {
			t.Fatalf("kernel %d sim: %v\n%s", ki, err, src)
		}
		for vi, in := range iters {
			_, want, err := ip.Call("k", in...)
			if err != nil {
				t.Fatalf("kernel %d interp: %v\n%s", ki, err, src)
			}
			for oi := 0; oi < nOut; oi++ {
				if outs[vi][oi] != want[oi] {
					t.Fatalf("kernel %d (period %.1f) vector %d out %d: hw=%d sw=%d\nsource:\n%s",
						ki, period, vi, oi, outs[vi][oi], want[oi], src)
				}
			}
		}
	}
}

// TestFuzzBubbleSchedules is the differential harness over random
// kernels AND random bubble schedules: the compiled Sim and the
// map-based RefSim are stepped in lockstep through a random mix of real
// iterations and Drain bubbles and must agree on every output, every
// error, and the final feedback state. Kernels rotate through three
// groups pinning the valid/poison semantics from both sides:
//
//   - divide-by-input kernels fed nonzero divisors: every bubble pushes
//     a zero divisor through the divider stage, so the whole schedule
//     (including the final flush) only completes if poisoned lanes mask
//     the fault — the seed faulted on the first drain;
//   - divide-by-input kernels fed occasional zero divisors: a *valid*
//     divisor-zero iteration must fault — in both cores, on the same
//     cycle (when it reaches the divider stage, possibly during a
//     Drain call) — and the aborted cycle must leave both cores in
//     identical states;
//   - division-free kernels with zero-heavy inputs: the plain
//     differential property under random bubbles.
func TestFuzzBubbleSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	const kernels = 30
	for ki := 0; ki < kernels; ki++ {
		group := ki % 3
		withDiv := group != 2
		src, _ := generateKernelDiv(rng, 2+rng.Intn(3), 3+rng.Intn(4), 1+rng.Intn(2), withDiv)
		period := []float64{2.5, 5, 1000}[ki%3]
		res, err := core.CompileSource(src, "k", core.Options{
			Optimize: ki%2 == 0,
			PeriodNs: period,
		})
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", ki, err, src)
		}
		fast := dp.NewSim(res.Datapath)
		ref := dp.NewRefSim(res.Datapath)
		in := make([]int64, len(res.Datapath.Inputs))
		zeroOK := group != 0
		faulted := false
		for cycle := 0; cycle < 160 && !faulted; cycle++ {
			var (
				fo, ro     []int64
				ferr, rerr error
				what       string
			)
			if rng.Intn(3) == 0 {
				what = "drain"
				fo, ferr = fast.Drain()
				ro, rerr = ref.Drain()
				if !zeroOK && (ferr != nil || rerr != nil) {
					// No valid iteration ever divides by zero in this
					// group, so a fault here means a bubble trapped.
					t.Fatalf("kernel %d cycle %d: bubble faulted: fast %v, ref %v\n%s",
						ki, cycle, ferr, rerr, src)
				}
			} else {
				what = "step"
				for j := range in {
					// In the zero-divisor group ~1 in 6 inputs is zero, so
					// divisor-zero iterations occur on valid cycles too.
					if zeroOK && rng.Intn(6) == 0 {
						in[j] = 0
					} else {
						in[j] = 1 + rng.Int63n(1<<11)
						if rng.Intn(2) == 0 {
							in[j] = -in[j]
						}
					}
				}
				fo, ferr = fast.Step(in)
				ro, rerr = ref.Step(in)
			}
			if (ferr != nil) != (rerr != nil) {
				t.Fatalf("kernel %d cycle %d (%s): error mismatch: fast %v, ref %v\n%s",
					ki, cycle, what, ferr, rerr, src)
			}
			if ferr != nil {
				// Both cores aborted the cycle identically; the faulting
				// iteration stays in flight, so stop the schedule here
				// and compare the (discarded-cycle) states below.
				faulted = true
				continue
			}
			for i := range ro {
				if fo[i] != ro[i] {
					t.Fatalf("kernel %d cycle %d (%s): output %d: fast %d != ref %d\n%s",
						ki, cycle, what, i, fo[i], ro[i], src)
				}
			}
		}
		if !faulted {
			// Flush the pipeline. In the zero-divisor group a valid
			// iteration admitted near the end of the schedule may still
			// reach the divider stage here — a correct fault, which must
			// occur in both cores on the same drain; in the other groups
			// no valid iteration can fault, so any flush error means a
			// bubble trapped.
			for i := 0; i <= res.Datapath.Stages+1; i++ {
				fo, ferr := fast.Drain()
				ro, rerr := ref.Drain()
				if (ferr != nil) != (rerr != nil) {
					t.Fatalf("kernel %d flush %d: error mismatch: fast %v, ref %v\n%s",
						ki, i, ferr, rerr, src)
				}
				if ferr != nil {
					if !zeroOK {
						t.Fatalf("kernel %d flush %d: bubble faulted: fast %v, ref %v\n%s",
							ki, i, ferr, rerr, src)
					}
					// Both cores hold the faulting iteration in flight;
					// stop flushing and compare the wedged states below.
					break
				}
				for j := range ro {
					if fo[j] != ro[j] {
						t.Fatalf("kernel %d flush %d output %d: fast %d != ref %d\n%s",
							ki, i, j, fo[j], ro[j], src)
					}
				}
			}
		}
		for v, rv := range ref.State {
			if fv, ok := fast.State[v]; !ok || fv != rv {
				t.Fatalf("kernel %d: feedback %s: fast %d != ref %d\n%s", ki, v.Name, fast.State[v], rv, src)
			}
		}
		if fast.Cycle() != ref.Cycle() {
			t.Fatalf("kernel %d: cycle count: fast %d != ref %d", ki, fast.Cycle(), ref.Cycle())
		}
	}
}

// TestFuzzPeriodInvariance compiles the same random kernels at different
// pipeline targets: the functional results must be identical even though
// stage structure differs.
func TestFuzzPeriodInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for ki := 0; ki < 10; ki++ {
		src, _ := generateKernel(rng, 3, 5, 1)
		var ref [][]int64
		in := make([][]int64, 8)
		for vi := range in {
			vec := make([]int64, 3)
			for j := range vec {
				vec[j] = rng.Int63n(4096) - 2048
			}
			in[vi] = vec
		}
		for _, period := range []float64{2, 3.7, 8, 500} {
			res, err := core.CompileSource(src, "k", core.Options{Optimize: true, PeriodNs: period})
			if err != nil {
				t.Fatal(err)
			}
			// The fuzz inputs are 3-wide; the datapath may have fewer
			// inputs if DCE removed unused params.
			vecs := make([][]int64, len(in))
			for vi := range in {
				vecs[vi] = in[vi][:len(res.Datapath.Inputs)]
			}
			outs, err := dp.NewSim(res.Datapath).Run(vecs)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = outs
				continue
			}
			for vi := range outs {
				for oi := range outs[vi] {
					if outs[vi][oi] != ref[vi][oi] {
						t.Fatalf("kernel %d: period %.1f changed results\n%s", ki, period, src)
					}
				}
			}
		}
	}
}
