package dp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"roccc/internal/cc"
	"roccc/internal/core"
	"roccc/internal/dp"
)

// fuzz_test.go generates random straight-line/branching C kernels and
// checks the whole compilation pipeline: the pipelined data-path
// simulation must match the C interpreter bit-for-bit on random inputs,
// across several pipeline targets. This is the strongest end-to-end
// property in the suite — it exercises the front end, SSA, mux/pipe
// construction, width inference and latch placement together.

type kernelGen struct {
	rng   *rand.Rand
	names []string
	decls []string
	stmts []string
	tmp   int
}

func (g *kernelGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return g.names[g.rng.Intn(len(g.names))]
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(65)-32)
		default:
			return g.names[g.rng.Intn(len(g.names))]
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[g.rng.Intn(len(ops))]
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("((%s) >> %d)", a, g.rng.Intn(5))
	case 1:
		return fmt.Sprintf("((%s) << %d)", a, g.rng.Intn(3))
	case 2:
		return fmt.Sprintf("((%s) %s (%s) ? (%s) : (%s))",
			a, []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)], b,
			g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("((%s) %s (%s))", a, op, b)
	}
}

func (g *kernelGen) stmt(depth int) {
	g.tmp++
	name := fmt.Sprintf("t%d", g.tmp)
	if depth > 0 && g.rng.Intn(4) == 0 {
		cond := g.expr(1)
		g.decls = append(g.decls, fmt.Sprintf("\tint %s;", name))
		g.stmts = append(g.stmts, fmt.Sprintf("\tif (%s) { %s = %s; } else { %s = %s; }",
			cond, name, g.expr(depth-1), name, g.expr(depth-1)))
	} else {
		g.decls = append(g.decls, fmt.Sprintf("\tint %s;", name))
		g.stmts = append(g.stmts, fmt.Sprintf("\t%s = %s;", name, g.expr(depth)))
	}
	g.names = append(g.names, name)
}

// generate builds a random kernel with nIn inputs and nOut outputs.
func generateKernel(rng *rand.Rand, nIn, nStmts, nOut int) (string, int) {
	g := &kernelGen{rng: rng}
	var params []string
	for i := 0; i < nIn; i++ {
		p := fmt.Sprintf("x%d", i)
		params = append(params, "int "+p)
		g.names = append(g.names, p)
	}
	for i := 0; i < nOut; i++ {
		params = append(params, fmt.Sprintf("int* o%d", i))
	}
	for i := 0; i < nStmts; i++ {
		g.stmt(2 + rng.Intn(2))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "void k(%s) {\n", strings.Join(params, ", "))
	for _, d := range g.decls {
		b.WriteString(d + "\n")
	}
	for _, s := range g.stmts {
		b.WriteString(s + "\n")
	}
	for i := 0; i < nOut; i++ {
		fmt.Fprintf(&b, "\t*o%d = %s;\n", i, g.names[len(g.names)-1-i%len(g.names)])
	}
	b.WriteString("}\n")
	return b.String(), nOut
}

func TestFuzzPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20240610))
	const kernels = 40
	for ki := 0; ki < kernels; ki++ {
		src, nOut := generateKernel(rng, 2+rng.Intn(3), 3+rng.Intn(5), 1+rng.Intn(2))
		period := []float64{2.5, 5, 1000}[ki%3]
		res, err := core.CompileSource(src, "k", core.Options{
			Optimize: ki%2 == 0,
			PeriodNs: period,
		})
		if err != nil {
			t.Fatalf("kernel %d failed to compile: %v\n%s", ki, err, src)
		}
		// Reference interpreter.
		file, err := cc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cc.Analyze(file)
		if err != nil {
			t.Fatal(err)
		}
		ip := cc.NewInterp(info)

		sim := dp.NewSim(res.Datapath)
		nIn := len(res.Datapath.Inputs)
		const vectors = 24
		iters := make([][]int64, vectors)
		for vi := range iters {
			in := make([]int64, nIn)
			for j := range in {
				in[j] = rng.Int63n(1<<12) - 1<<11
			}
			iters[vi] = in
		}
		outs, err := sim.Run(iters)
		if err != nil {
			t.Fatalf("kernel %d sim: %v\n%s", ki, err, src)
		}
		for vi, in := range iters {
			_, want, err := ip.Call("k", in...)
			if err != nil {
				t.Fatalf("kernel %d interp: %v\n%s", ki, err, src)
			}
			for oi := 0; oi < nOut; oi++ {
				if outs[vi][oi] != want[oi] {
					t.Fatalf("kernel %d (period %.1f) vector %d out %d: hw=%d sw=%d\nsource:\n%s",
						ki, period, vi, oi, outs[vi][oi], want[oi], src)
				}
			}
		}
	}
}

// TestFuzzPeriodInvariance compiles the same random kernels at different
// pipeline targets: the functional results must be identical even though
// stage structure differs.
func TestFuzzPeriodInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for ki := 0; ki < 10; ki++ {
		src, _ := generateKernel(rng, 3, 5, 1)
		var ref [][]int64
		in := make([][]int64, 8)
		for vi := range in {
			vec := make([]int64, 3)
			for j := range vec {
				vec[j] = rng.Int63n(4096) - 2048
			}
			in[vi] = vec
		}
		for _, period := range []float64{2, 3.7, 8, 500} {
			res, err := core.CompileSource(src, "k", core.Options{Optimize: true, PeriodNs: period})
			if err != nil {
				t.Fatal(err)
			}
			// The fuzz inputs are 3-wide; the datapath may have fewer
			// inputs if DCE removed unused params.
			vecs := make([][]int64, len(in))
			for vi := range in {
				vecs[vi] = in[vi][:len(res.Datapath.Inputs)]
			}
			outs, err := dp.NewSim(res.Datapath).Run(vecs)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = outs
				continue
			}
			for vi := range outs {
				for oi := range outs[vi] {
					if outs[vi][oi] != ref[vi][oi] {
						t.Fatalf("kernel %d: period %.1f changed results\n%s", ki, period, src)
					}
				}
			}
		}
	}
}
