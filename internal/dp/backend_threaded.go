package dp

import (
	"fmt"

	"roccc/internal/vm"
)

// backend_threaded.go lowers a simPlan into threaded code: one closure
// per op, compiled once per plan and shared by every Sim over it. The
// paper's premise is that the data path for a given C kernel is fully
// static — every op, width, stage and wire is fixed at compile time —
// so nothing about an op needs re-deciding each cycle. Where the
// interpreter loop pays a switch dispatch and descriptor loads per op
// per cycle, a threaded step function has its opcode selected, its
// operand layout (ring×ring, ring×immediate, ...) specialized, and its
// ring bases, offsets and fused wrap shifts baked in as captured
// constants. The lane kernels do the same for the batch path, with the
// lane-region bases pre-multiplied against a fixed lane stride.
//
// Fault semantics keep the replay contract: a step closure returns
// false instead of faulting, stepThreaded restores the pre-step state
// and replays the cycle through the interpreter loop, and a lane kernel
// returning false makes the chunk replay serially — so abort cycle,
// typed *FaultError and post-abort state are the interpreter's
// bit-for-bit.

// stepFn is one op of the threaded serial step. It reads and writes the
// Sim's ring/state directly; false means the op would fault this cycle
// on a valid iteration (the caller replays through the interpreter for
// the canonical error).
type stepFn func(s *Sim) bool

// laneFn is one op of the threaded batch path, operating on the chunk's
// lane scratch (fixed stride threadPlan.laneN). false signals a fault
// on a valid lane.
type laneFn func(lanes []int64, lv []bool, n int) bool

// threadPlan is a simPlan lowered to threaded code, cached on the plan.
type threadPlan struct {
	stepFns []stepFn
	laneA   []laneFn
	laneC   []laneFn
	// cone/coneFns: the recognized closed-form feedback cone and its
	// materialization ops compiled to lane kernels (nil/absent when the
	// cone is unrecognized — those plans keep the lane-serial batchCone).
	cone    *coneSpec
	coneFns []laneFn
	// laneN is the fixed lane stride every lane kernel's bases are baked
	// against: the scratch for a maximal chunk. Smaller chunks use the
	// same stride and simply leave the tail lanes untouched.
	laneN int
}

// threadFor returns the plan's threaded code, compiling it on first use.
func (p *simPlan) threadFor() *threadPlan {
	p.threadOnce.Do(func() { p.thread = compileThreadPlan(p) })
	return p.thread
}

func compileThreadPlan(p *simPlan) *threadPlan {
	tp := &threadPlan{
		laneN: p.stages + batchChunkMax,
		cone:  p.coneFor(),
	}
	tp.stepFns = make([]stepFn, len(p.plan))
	for i := range p.plan {
		tp.stepFns[i] = compileStepFn(&p.plan[i])
	}
	tp.laneA = compileLaneFns(p, p.batchA, tp.laneN)
	tp.laneC = compileLaneFns(p, p.batchC, tp.laneN)
	if tp.cone != nil {
		tp.coneFns = compileLaneFns(p, tp.cone.rest, tp.laneN)
	}
	return tp
}

// stepThreaded is the threaded serial step: the same prologue (ring
// rotation, poison propagation, input wrapping), latch commit and
// output alignment as the interpreter loop, with the op walk dispatched
// through the compiled closure array.
//
//roccc:hotpath
func (s *Sim) stepThreaded(inputs []int64, valid bool) ([]int64, error) {
	if len(inputs) != len(s.p.inSlots) {
		return nil, fmt.Errorf("dp: sim: %d inputs, want %d", len(inputs), len(s.p.inSlots))
	}
	tp := s.p.threadFor()
	prevHead := s.head
	s.head = (s.head - 1) & s.rmask
	head := s.head
	rmask := s.rmask
	ring := s.ring
	s.validRing[s.cycle&rmask] = valid
	stageValid := s.stageValid
	for st := range stageValid {
		it := s.cycle - st
		stageValid[st] = it >= 0 && s.validRing[it&rmask]
	}
	inSlots := s.p.inSlots
	for i := range inSlots {
		sl := &inSlots[i]
		ring[int(sl.base)+head] = sl.w.wrap(inputs[i])
	}
	s.stagedAny = false
	for _, fn := range tp.stepFns {
		if !fn(s) {
			// An op would fault on a valid iteration. Everything written
			// so far is confined to this cycle's ring slots and staged
			// latch values, so restoring the head and dropping the staging
			// rewinds the cycle completely; the interpreter replay then
			// produces the canonical abort (same cycle, same *FaultError,
			// same post-abort state).
			s.head = prevHead
			for i := range s.stagedSet {
				s.stagedSet[i] = false
			}
			return s.stepInterp(inputs, valid)
		}
	}
	if s.stagedAny {
		for i := range s.stagedSet {
			if s.stagedSet[i] {
				s.stagedSet[i] = false
				s.state[i] = s.stagedVal[i]
				s.State[s.p.fbVars[i]] = s.stagedVal[i]
			}
		}
	}
	s.cycle++
	outSlots := s.p.outSlots
	for i := range outSlots {
		o := &outSlots[i]
		s.outBuf[i] = ring[int(o.base)+((head+int(o.delta))&rmask)]
	}
	return s.outBuf, nil
}

// compileStepFn lowers one op into its threaded step closure. The hot
// arithmetic ops (single fused wrap — the common case, since width
// inference only narrows) get operand-layout specializations with bases
// and shifts captured; everything else gets a monomorphic closure per
// opcode that still skips the switch and descriptor loads.
//
//roccc:hotpath-closures
func compileStepFn(c *cop) stepFn {
	op := *c
	slot := int(op.slot)
	st := int(op.stage)
	switch op.opc {
	case vm.LDC, vm.MOV, vm.CVT:
		if op.wmode != wrapBoth && op.a.ring {
			ab, ao, fw := int(op.a.base), int(op.a.off), op.fw
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[ab+((h+ao)&s.rmask)])
				return true
			}
		}
		a, tw, hw := op.a, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a)))
			return true
		}
	case vm.ADD, vm.SUB, vm.MUL:
		if op.wmode != wrapBoth {
			return compileArithStep(op, slot)
		}
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		switch op.opc {
		case vm.ADD:
			return func(s *Sim) bool {
				s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) + s.fetch(&b)))
				return true
			}
		case vm.SUB:
			return func(s *Sim) bool {
				s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) - s.fetch(&b)))
				return true
			}
		default:
			return func(s *Sim) bool {
				s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) * s.fetch(&b)))
				return true
			}
		}
	case vm.DIV:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			bv := s.fetch(&b)
			if bv == 0 {
				if !s.stageValid[st] {
					s.ring[slot+s.head] = 0 // poisoned lane: fault masked
					return true
				}
				return false
			}
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) / bv))
			return true
		}
	case vm.REM:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			bv := s.fetch(&b)
			if bv == 0 {
				if !s.stageValid[st] {
					s.ring[slot+s.head] = 0
					return true
				}
				return false
			}
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) % bv))
			return true
		}
	case vm.AND:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) & s.fetch(&b)))
			return true
		}
	case vm.IOR:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) | s.fetch(&b)))
			return true
		}
	case vm.XOR:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) ^ s.fetch(&b)))
			return true
		}
	case vm.SHL:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) << uint(s.fetch(&b)&63)))
			return true
		}
	case vm.SHR:
		a, b, tw, hw := op.a, op.b, op.tw, op.hw
		if op.shrLogical {
			mask := op.shrMask
			return func(s *Sim) bool {
				sh := uint(s.fetch(&b) & 63)
				s.ring[slot+s.head] = hw.wrap(tw.wrap(int64((uint64(s.fetch(&a)) & mask) >> sh)))
				return true
			}
		}
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(s.fetch(&a) >> uint(s.fetch(&b)&63)))
			return true
		}
	case vm.NEG:
		a, tw, hw := op.a, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(-s.fetch(&a)))
			return true
		}
	case vm.NOT:
		a, tw, hw := op.a, op.tw, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(tw.wrap(^s.fetch(&a)))
			return true
		}
	case vm.SEQ:
		a, b, hw := op.a, op.b, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(boolBit(s.fetch(&a) == s.fetch(&b)))
			return true
		}
	case vm.SNE:
		a, b, hw := op.a, op.b, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(boolBit(s.fetch(&a) != s.fetch(&b)))
			return true
		}
	case vm.SLT:
		a, b, hw := op.a, op.b, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(boolBit(s.fetch(&a) < s.fetch(&b)))
			return true
		}
	case vm.SLE:
		a, b, hw := op.a, op.b, op.hw
		return func(s *Sim) bool {
			s.ring[slot+s.head] = hw.wrap(boolBit(s.fetch(&a) <= s.fetch(&b)))
			return true
		}
	case vm.MUX:
		a, b, c3, tw, hw := op.a, op.b, op.c, op.tw, op.hw
		return func(s *Sim) bool {
			var v int64
			if s.fetch(&a) != 0 {
				v = tw.wrap(s.fetch(&b))
			} else {
				v = tw.wrap(s.fetch(&c3))
			}
			s.ring[slot+s.head] = hw.wrap(v)
			return true
		}
	case vm.LPR:
		fb := int(op.fb)
		return func(s *Sim) bool {
			s.ring[slot+s.head] = s.state[fb]
			return true
		}
	case vm.SNX:
		a, tw, fb := op.a, op.tw, int(op.fb)
		return func(s *Sim) bool {
			if s.stageValid[st] {
				s.stagedVal[fb] = tw.wrap(s.fetch(&a))
				s.stagedSet[fb] = true
				s.stagedAny = true
			}
			return true
		}
	case vm.LUT:
		a, rom := op.a, op.rom
		return func(s *Sim) bool {
			ix := s.fetch(&a)
			if ix < 0 || ix >= int64(rom.Size) {
				if !s.stageValid[st] {
					s.ring[slot+s.head] = 0
					return true
				}
				return false
			}
			s.ring[slot+s.head] = rom.Content[ix]
			return true
		}
	default:
		// Unknown opcode: fail the step so the interpreter replay raises
		// its canonical "unsupported opcode" error.
		return func(s *Sim) bool { return false }
	}
}

// compileArithStep specializes a single-wrap ADD/SUB/MUL per operand
// layout: the ring bases, stage offsets, immediates and the fused wrap
// are captured constants, so the closure body is the bare arithmetic.
//
//roccc:hotpath-closures
func compileArithStep(op cop, slot int) stepFn {
	fw := op.fw
	ab, ao := int(op.a.base), int(op.a.off)
	bb, bo := int(op.b.base), int(op.b.off)
	switch op.opc {
	case vm.ADD:
		switch {
		case op.a.ring && op.b.ring:
			return func(s *Sim) bool {
				h, m, r := s.head, s.rmask, s.ring
				r[slot+h] = fw.wrap(r[ab+((h+ao)&m)] + r[bb+((h+bo)&m)])
				return true
			}
		case op.a.ring:
			imm := op.b.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[ab+((h+ao)&s.rmask)] + imm)
				return true
			}
		case op.b.ring:
			imm := op.a.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[bb+((h+bo)&s.rmask)] + imm)
				return true
			}
		default:
			v := fw.wrap(op.a.imm + op.b.imm)
			return func(s *Sim) bool {
				s.ring[slot+s.head] = v
				return true
			}
		}
	case vm.SUB:
		switch {
		case op.a.ring && op.b.ring:
			return func(s *Sim) bool {
				h, m, r := s.head, s.rmask, s.ring
				r[slot+h] = fw.wrap(r[ab+((h+ao)&m)] - r[bb+((h+bo)&m)])
				return true
			}
		case op.a.ring:
			imm := op.b.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[ab+((h+ao)&s.rmask)] - imm)
				return true
			}
		case op.b.ring:
			imm := op.a.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(imm - s.ring[bb+((h+bo)&s.rmask)])
				return true
			}
		default:
			v := fw.wrap(op.a.imm - op.b.imm)
			return func(s *Sim) bool {
				s.ring[slot+s.head] = v
				return true
			}
		}
	default: // vm.MUL
		switch {
		case op.a.ring && op.b.ring:
			return func(s *Sim) bool {
				h, m, r := s.head, s.rmask, s.ring
				r[slot+h] = fw.wrap(r[ab+((h+ao)&m)] * r[bb+((h+bo)&m)])
				return true
			}
		case op.a.ring:
			imm := op.b.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[ab+((h+ao)&s.rmask)] * imm)
				return true
			}
		case op.b.ring:
			imm := op.a.imm
			return func(s *Sim) bool {
				h := s.head
				s.ring[slot+h] = fw.wrap(s.ring[bb+((h+bo)&s.rmask)] * imm)
				return true
			}
		default:
			v := fw.wrap(op.a.imm * op.b.imm)
			return func(s *Sim) bool {
				s.ring[slot+s.head] = v
				return true
			}
		}
	}
}

// thAcc is a lane-kernel operand with its region base pre-multiplied
// against the fixed lane stride and shifted to the op's own lane window
// (index i addresses the consumer's lane k0+i).
type thAcc struct {
	base int
	imm  int64
	ring bool
}

func (o thAcc) at(lanes []int64, i int) int64 {
	if o.ring {
		return lanes[o.base+i]
	}
	return o.imm
}

// runLaneFns executes one compiled op class over the chunk.
//
//roccc:hotpath
func runLaneFns(fns []laneFn, lanes []int64, lv []bool, n int) bool {
	for _, fn := range fns {
		if !fn(lanes, lv, n) {
			return false
		}
	}
	return true
}

func compileLaneFns(p *simPlan, ops []cop, laneN int) []laneFn {
	fns := make([]laneFn, len(ops))
	for i := range ops {
		fns[i] = compileLaneFn(p, &ops[i], laneN)
	}
	return fns
}

// compileLaneFn lowers one op into its lane kernel: the op-major loop
// batchOps runs for it, with the region bases resolved against the
// fixed stride at compile time and the wrap mode folded into the loop
// choice. Semantics mirror batchOps case for case (raw compute over the
// active lanes, then the precompiled wrap pass), so the kernels stay
// bit-identical to the interpreter batch path.
//
//roccc:hotpath-closures
func compileLaneFn(p *simPlan, c *cop, laneN int) laneFn {
	op := *c
	k0 := p.stages - int(op.stage)
	db := (int(op.slot)>>p.opShift)*laneN + k0
	res := func(o cOperand) thAcc {
		if !o.ring {
			return thAcc{imm: o.imm}
		}
		return thAcc{base: (int(o.base)>>p.opShift)*laneN + k0, ring: true}
	}
	a, b := res(op.a), res(op.b)
	switch op.opc {
	case vm.LDC, vm.MOV, vm.CVT:
		if a.ring {
			ab := a.base
			if op.wmode != wrapBoth {
				fw := op.fw
				return func(lanes []int64, lv []bool, n int) bool {
					fusedCopy(lanes[db:db+n], lanes[ab:ab+n], fw)
					return true
				}
			}
			tw, hw := op.tw, op.hw
			return func(lanes []int64, lv []bool, n int) bool {
				d, src := lanes[db:db+n], lanes[ab:ab+n]
				for i := range d {
					d[i] = hw.wrap(tw.wrap(src[i]))
				}
				return true
			}
		}
		v := op.hw.wrap(op.tw.wrap(a.imm))
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = v
			}
			return true
		}
	case vm.ADD:
		if op.wmode != wrapBoth {
			fw := op.fw
			switch {
			case a.ring && b.ring:
				ab, bb := a.base, b.base
				return func(lanes []int64, lv []bool, n int) bool {
					fusedAdd(lanes[db:db+n], lanes[ab:ab+n], lanes[bb:bb+n], fw)
					return true
				}
			case a.ring:
				ab, imm := a.base, b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedAddImm(lanes[db:db+n], lanes[ab:ab+n], imm, fw)
					return true
				}
			case b.ring:
				bb, imm := b.base, a.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedAddImm(lanes[db:db+n], lanes[bb:bb+n], imm, fw)
					return true
				}
			default:
				v := a.imm + b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedFill(lanes[db:db+n], v, fw)
					return true
				}
			}
		}
		tw, hw := op.tw, op.hw
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = hw.wrap(tw.wrap(a.at(lanes, i) + b.at(lanes, i)))
			}
			return true
		}
	case vm.SUB:
		if op.wmode != wrapBoth {
			fw := op.fw
			switch {
			case a.ring && b.ring:
				ab, bb := a.base, b.base
				return func(lanes []int64, lv []bool, n int) bool {
					fusedSub(lanes[db:db+n], lanes[ab:ab+n], lanes[bb:bb+n], fw)
					return true
				}
			case a.ring:
				ab, imm := a.base, b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedAddImm(lanes[db:db+n], lanes[ab:ab+n], -imm, fw)
					return true
				}
			case b.ring:
				bb, imm := b.base, a.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedSubFrom(lanes[db:db+n], imm, lanes[bb:bb+n], fw)
					return true
				}
			default:
				v := a.imm - b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedFill(lanes[db:db+n], v, fw)
					return true
				}
			}
		}
		tw, hw := op.tw, op.hw
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = hw.wrap(tw.wrap(a.at(lanes, i) - b.at(lanes, i)))
			}
			return true
		}
	case vm.MUL:
		if op.wmode != wrapBoth {
			fw := op.fw
			switch {
			case a.ring && b.ring:
				ab, bb := a.base, b.base
				return func(lanes []int64, lv []bool, n int) bool {
					fusedMul(lanes[db:db+n], lanes[ab:ab+n], lanes[bb:bb+n], fw)
					return true
				}
			case a.ring:
				ab, imm := a.base, b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedMulImm(lanes[db:db+n], lanes[ab:ab+n], imm, fw)
					return true
				}
			case b.ring:
				bb, imm := b.base, a.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedMulImm(lanes[db:db+n], lanes[bb:bb+n], imm, fw)
					return true
				}
			default:
				v := a.imm * b.imm
				return func(lanes []int64, lv []bool, n int) bool {
					fusedFill(lanes[db:db+n], v, fw)
					return true
				}
			}
		}
		tw, hw := op.tw, op.hw
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = hw.wrap(tw.wrap(a.at(lanes, i) * b.at(lanes, i)))
			}
			return true
		}
	case vm.DIV:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				bv := b.at(lanes, i)
				if bv == 0 {
					if lv[k0+i] {
						return false
					}
					d[i] = 0
					continue
				}
				d[i] = a.at(lanes, i) / bv
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.REM:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				bv := b.at(lanes, i)
				if bv == 0 {
					if lv[k0+i] {
						return false
					}
					d[i] = 0
					continue
				}
				d[i] = a.at(lanes, i) % bv
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.AND:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = a.at(lanes, i) & b.at(lanes, i)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.IOR:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = a.at(lanes, i) | b.at(lanes, i)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.XOR:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = a.at(lanes, i) ^ b.at(lanes, i)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SHL:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = a.at(lanes, i) << uint(b.at(lanes, i)&63)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SHR:
		if op.shrLogical {
			mask := op.shrMask
			return func(lanes []int64, lv []bool, n int) bool {
				d := lanes[db : db+n]
				for i := range d {
					d[i] = int64((uint64(a.at(lanes, i)) & mask) >> uint(b.at(lanes, i)&63))
				}
				wrapLanes(d, &op)
				return true
			}
		}
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = a.at(lanes, i) >> uint(b.at(lanes, i)&63)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.NEG:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = -a.at(lanes, i)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.NOT:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = ^a.at(lanes, i)
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SEQ:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = boolBit(a.at(lanes, i) == b.at(lanes, i))
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SNE:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = boolBit(a.at(lanes, i) != b.at(lanes, i))
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SLT:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = boolBit(a.at(lanes, i) < b.at(lanes, i))
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.SLE:
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				d[i] = boolBit(a.at(lanes, i) <= b.at(lanes, i))
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.MUX:
		c3 := res(op.c)
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				if a.at(lanes, i) != 0 {
					d[i] = b.at(lanes, i)
				} else {
					d[i] = c3.at(lanes, i)
				}
			}
			wrapLanes(d, &op)
			return true
		}
	case vm.LUT:
		rom := op.rom
		return func(lanes []int64, lv []bool, n int) bool {
			d := lanes[db : db+n]
			for i := range d {
				ix := a.at(lanes, i)
				if ix < 0 || ix >= int64(rom.Size) {
					if lv[k0+i] {
						return false
					}
					d[i] = 0
					continue
				}
				d[i] = rom.Content[ix]
			}
			wrapLanes(d, &op)
			return true
		}
	default:
		// LPR/SNX live in the cone; anything else fails the chunk so the
		// serial replay produces the proper error.
		return func(lanes []int64, lv []bool, n int) bool { return false }
	}
}

// fusedCopy is the copy-class fused lane kernel (one traversal with the
// single wrap applied), the batch counterpart of the specialized MOV
// step closure.
func fusedCopy(d, a []int64, w wrapSpec) {
	switch {
	case w.sh == 0:
		copy(d, a)
	case w.signed:
		for i := range d {
			d[i] = a[i] << w.sh >> w.sh
		}
	default:
		for i := range d {
			d[i] = int64(uint64(a[i]) << w.sh >> w.sh)
		}
	}
}
