package dp

import (
	"fmt"

	"roccc/internal/vm"
)

// pipeline.go implements §4.2.3: "ROCCC automatically places latches in
// a data path to pipeline it. The latch location in a node is decided
// based on the delay estimation of instructions." After pipelining,
// "each pipeline stage is an instance of single iteration in the
// for-loop body" — the data path accepts one iteration per clock.

// DelayFn estimates the combinational propagation delay of an op in
// nanoseconds. Package synth provides the Virtex-II calibrated model;
// DefaultDelay is a reasonable generic model for tests.
type DelayFn func(op *Op) float64

// DefaultDelay is a simple technology-neutral delay model (ns).
func DefaultDelay(op *Op) float64 {
	w := float64(op.Width)
	if w == 0 {
		w = float64(op.Instr.Typ.Bits)
	}
	switch op.Instr.Op {
	case vm.MOV, vm.LDC, vm.CVT, vm.LPR:
		return 0.2
	case vm.ADD, vm.SUB, vm.NEG:
		return 1.0 + 0.08*w
	case vm.MUL:
		return 2.0 + 0.25*w
	case vm.DIV, vm.REM:
		return 4.0 + 0.6*w
	case vm.AND, vm.IOR, vm.XOR, vm.NOT:
		return 0.5
	case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
		return 0.8 + 0.05*w
	case vm.MUX:
		return 0.7
	case vm.LUT:
		return 1.5
	case vm.SNX:
		return 0.2
	}
	return 0.5
}

// PipelineConfig controls latch placement.
type PipelineConfig struct {
	// Period is the target clock period in ns (e.g. 5.0 for 200 MHz).
	Period float64
	// Delay estimates per-op combinational delay; nil uses DefaultDelay.
	Delay DelayFn
}

// Pipeline assigns every op a pipeline stage and marks latched outputs.
// Operations on a feedback path (LPR → ... → SNX) are kept inside a
// single stage — the SNX latch is the only register on the cycle — and
// the realized stage delay may exceed the target period, which lowers
// the reported clock rate instead of breaking the accumulator semantics.
func Pipeline(d *Datapath, cfgp PipelineConfig) error {
	delay := cfgp.Delay
	if delay == nil {
		delay = DefaultDelay
	}
	if cfgp.Period <= 0 {
		cfgp.Period = 5.0
	}
	d.Period = cfgp.Period

	// Consumers map for feedback-path discovery.
	consumers := map[*Op][]*Op{}
	for _, op := range d.Ops {
		for _, r := range op.Instr.Uses() {
			if def := d.DefOf[r]; def != nil {
				consumers[def] = append(consumers[def], op)
			}
		}
	}
	onPath := map[*Op]bool{}
	for _, fb := range d.Feedbacks {
		fwd := map[*Op]bool{}
		var walk func(op *Op)
		walk = func(op *Op) {
			if fwd[op] {
				return
			}
			fwd[op] = true
			for _, c := range consumers[op] {
				walk(c)
			}
		}
		for _, lpr := range fb.LPRs {
			walk(lpr)
		}
		// Backward from SNX over fwd-marked ops.
		bwd := map[*Op]bool{}
		var back func(op *Op)
		back = func(op *Op) {
			if bwd[op] || !fwd[op] {
				return
			}
			bwd[op] = true
			for _, r := range op.Instr.Uses() {
				if def := d.DefOf[r]; def != nil {
					back(def)
				}
			}
		}
		if fwd[fb.SNX] {
			back(fb.SNX)
		}
		for op := range bwd {
			onPath[op] = true
		}
		for _, lpr := range fb.LPRs {
			onPath[lpr] = true
		}
		onPath[fb.SNX] = true
	}

	// LPR stages follow their feedback region; floors raised iteratively
	// until every LPR sits in the same stage as its SNX.
	lprFloor := map[*Op]int{}
	for iter := 0; iter < 16; iter++ {
		schedule(d, delay, cfgp.Period, onPath, lprFloor)
		stable := true
		for _, fb := range d.Feedbacks {
			for _, lpr := range fb.LPRs {
				if lpr.Stage != fb.SNX.Stage {
					lprFloor[lpr] = fb.SNX.Stage
					stable = false
				}
			}
		}
		if stable {
			break
		}
	}
	for _, fb := range d.Feedbacks {
		for _, lpr := range fb.LPRs {
			if lpr.Stage != fb.SNX.Stage {
				return fmt.Errorf("dp: feedback %s: LPR at stage %d but SNX at stage %d (initiation interval > 1 not supported)",
					fb.State.Name, lpr.Stage, fb.SNX.Stage)
			}
		}
	}

	// Latch marking and stage statistics.
	maxStage := 0
	d.MaxStageDelay = 0
	for _, op := range d.Ops {
		if op.Stage > maxStage {
			maxStage = op.Stage
		}
		if op.TEnd > d.MaxStageDelay {
			d.MaxStageDelay = op.TEnd
		}
	}
	for _, op := range d.Ops {
		op.Latched = false
		for _, c := range consumers[op] {
			if c.Stage > op.Stage {
				op.Latched = true
			}
		}
		if op.Instr.Op == vm.SNX {
			op.Latched = true // "SNX instruction must have a latch" (§4.2.3)
		}
	}
	d.Stages = maxStage + 1
	return nil
}

// schedule performs one greedy ASAP pass over the topologically ordered
// ops.
func schedule(d *Datapath, delay DelayFn, period float64, onPath map[*Op]bool, lprFloor map[*Op]int) {
	for _, op := range d.Ops {
		if op.Node.Kind == InputNode {
			op.Stage = 0
			op.TEnd = 0
			continue
		}
		if op.Instr.Op == vm.LPR {
			op.Stage = lprFloor[op]
			op.TEnd = delay(op)
			continue
		}
		stage := 0
		tStart := 0.0
		for _, r := range op.Instr.Uses() {
			def := d.DefOf[r]
			if def == nil {
				continue
			}
			if def.Stage > stage {
				stage = def.Stage
				tStart = 0
			}
			if def.Stage == stage && def.TEnd > tStart {
				tStart = def.TEnd
			}
		}
		dly := delay(op)
		if tStart+dly > period && tStart > 0 && canBump(d, op, stage, onPath) &&
			(!onPath[op] || dly <= period) {
			// Latch the incoming values: start a new stage. On-path ops
			// bump only when the move actually meets the period, so the
			// LPR-floor fixpoint cannot ratchet on an oversized cycle.
			stage++
			tStart = 0
		}
		op.Stage = stage
		op.TEnd = tStart + dly
	}
}

// canBump reports whether op may start a new stage. Ops outside feedback
// regions always may. An op on a feedback path may only when none of its
// same-stage producers (other than the LPR latch read itself, which
// floats with the floor) is also on the path — bumping then latches only
// off-path inputs, and the LPR floor fixpoint re-aligns the latch read.
func canBump(d *Datapath, op *Op, stage int, onPath map[*Op]bool) bool {
	if !onPath[op] {
		return true
	}
	for _, r := range op.Instr.Uses() {
		def := d.DefOf[r]
		if def == nil || def.Stage != stage {
			continue
		}
		if onPath[def] && def.Instr.Op != vm.LPR {
			return false
		}
	}
	return true
}

// Latency returns the number of cycles between an iteration entering the
// data path and its outputs appearing (the stage index of the last
// output definition).
func (d *Datapath) Latency() int {
	max := 0
	for _, p := range d.Outputs {
		if def := d.DefOf[p.Reg]; def != nil && def.Stage > max {
			max = def.Stage
		}
	}
	return max
}

// ClockMHz returns the achievable clock rate implied by the worst stage
// delay (the synthesis model refines this with routing overhead).
func (d *Datapath) ClockMHz() float64 {
	if d.MaxStageDelay <= 0 {
		return 1000.0
	}
	return 1000.0 / d.MaxStageDelay
}

// LatchCount returns the number of latched op outputs (pipeline
// registers), one counted per latched op.
func (d *Datapath) LatchCount() int {
	n := 0
	for _, op := range d.Ops {
		if op.Latched {
			n++
		}
	}
	return n
}
