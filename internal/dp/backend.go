package dp

import "fmt"

// Backend selects how a Sim executes the compiled simPlan. The plan
// itself — op order, operand resolution, wrap specs, ring geometry,
// batch partition — is shared by every backend; what differs is the
// dispatch machinery that walks it each cycle. All backends are pinned
// bit-identical (outputs, feedback latches, cycle counts, fault abort
// cycles and the typed *FaultError) by the differential matrix in
// backend_test.go; any fault inside a compiled chunk replays through
// the interpreter so abort semantics are its by construction.
type Backend uint8

const (
	// BackendInterp is the switch-dispatch interpreter loop over the
	// plan's cop descriptors — the reference semantics, and the zero
	// value so existing callers keep today's behavior.
	BackendInterp Backend = iota
	// BackendThreaded lowers the plan into per-kernel threaded code at
	// plan-cache time: one closure per op with widths, wrap masks, ring
	// offsets and operand indices baked in as captured constants — no
	// switch, no per-op descriptor loads — for both the serial Step loop
	// and the StepN/DrainN lane kernels, plus the closed-form feedback
	// cone when the plan's latch recurrence matches it.
	BackendThreaded
	// BackendCone is the ablation backend: interpreter dispatch
	// everywhere except the feedback cone, which runs through the
	// closed-form recurrence when recognized. It isolates how much of
	// the threaded backend's win comes from de-serializing the latch
	// cone alone.
	BackendCone
)

// String returns the backend's flag spelling.
func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendThreaded:
		return "threaded"
	case BackendCone:
		return "cone"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend resolves a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	for _, b := range Backends() {
		if s == b.String() {
			return b, nil
		}
	}
	return BackendInterp, fmt.Errorf("dp: unknown backend %q (want interp, threaded or cone)", s)
}

// Backends lists every execution backend, interp first — the order the
// differential matrix and the per-backend benchmarks iterate in.
func Backends() []Backend {
	return []Backend{BackendInterp, BackendThreaded, BackendCone}
}
