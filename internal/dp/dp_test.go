package dp_test

import (
	"math/rand"
	"strings"
	"testing"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/vm"
)

const ifElseSource = `
void if_else(int x1, int x2, int* x3, int* x4) {
	int a, c;
	c = x1 - x2;
	if (c < x2)
		a = x1*x1;
	else
		a = x1 * x2 + 3;
	c = c - a;
	*x3 = c;
	*x4 = a;
	return;
}
`

const firSource = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

const accumSource = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

func compile(t *testing.T, src, name string, opt core.Options) *core.Result {
	t.Helper()
	res, err := core.CompileSource(src, name, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig6BranchDatapath reproduces the paper's Fig. 6: the if_else
// kernel's data path has soft nodes for the CFG blocks plus one mux node
// (node 7) and one pipe node (node 6) — the "hard nodes [that] only
// appear in hardware and have no equivalence in software".
func TestFig6BranchDatapath(t *testing.T) {
	res := compile(t, ifElseSource, "if_else", core.Options{Optimize: false, PeriodNs: 5})
	d := res.Datapath
	if n := len(d.NodesOfKind(dp.MuxNode)); n != 1 {
		t.Errorf("mux nodes = %d, want 1", n)
	}
	if n := len(d.NodesOfKind(dp.PipeNode)); n != 1 {
		t.Errorf("pipe nodes = %d, want 1", n)
	}
	soft := len(d.NodesOfKind(dp.SoftNode))
	if soft < 3 || soft > 4 {
		t.Errorf("soft nodes = %d, want 3..4 (entry, then, else, join)", soft)
	}
	// The mux node must carry exactly one mux op (variable a).
	mux := d.NodesOfKind(dp.MuxNode)[0]
	if len(mux.Ops) != 1 || mux.Ops[0].Instr.Op != vm.MUX {
		t.Errorf("mux node ops = %v", mux.Ops)
	}
	// The pipe node copies c (live through the branch).
	pipe := d.NodesOfKind(dp.PipeNode)[0]
	if len(pipe.Ops) < 1 {
		t.Error("pipe node is empty")
	}
	for _, op := range pipe.Ops {
		if op.Instr.Op != vm.MOV {
			t.Errorf("pipe node contains %s, want only copies", op.Instr.Op)
		}
	}
	// Mux and pipe share a level strictly between branches and join.
	if mux.Level != pipe.Level {
		t.Errorf("mux level %d != pipe level %d", mux.Level, pipe.Level)
	}
}

// TestFig7AccumulatorDatapath reproduces Fig. 7: the accumulator data
// path has an LPR/SNX feedback latch pair on sum.
func TestFig7AccumulatorDatapath(t *testing.T) {
	res := compile(t, accumSource, "accum", core.DefaultOptions())
	d := res.Datapath
	if len(d.Feedbacks) != 1 {
		t.Fatalf("feedbacks = %d, want 1", len(d.Feedbacks))
	}
	fb := d.Feedbacks[0]
	if fb.State.Name != "sum" {
		t.Errorf("feedback state = %s", fb.State.Name)
	}
	if !fb.SNX.Latched {
		t.Error("SNX must have a latch (§4.2.3)")
	}
	for _, lpr := range fb.LPRs {
		if lpr.Stage != fb.SNX.Stage {
			t.Errorf("LPR stage %d != SNX stage %d", lpr.Stage, fb.SNX.Stage)
		}
	}
}

// TestDatapathSimIfElse checks the pipelined circuit against the HIR
// reference on random inputs, streaming one iteration per cycle.
func TestDatapathSimIfElse(t *testing.T) {
	res := compile(t, ifElseSource, "if_else", core.DefaultOptions())
	d := res.Datapath
	k := res.Kernel
	sim := dp.NewSim(d)
	rng := rand.New(rand.NewSource(5))
	const n = 64
	iters := make([][]int64, n)
	for i := range iters {
		iters[i] = []int64{rng.Int63n(1 << 15), rng.Int63n(1 << 15)}
	}
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range iters {
		env := hir.NewEnv()
		for j, p := range k.DP.Params {
			env.Vars[p] = in[j]
		}
		if err := hir.RunFunc(k.DP, env); err != nil {
			t.Fatal(err)
		}
		for j, o := range k.DP.Outs {
			if outs[i][j] != env.Vars[o] {
				t.Fatalf("iter %d out %d: sim=%d ref=%d", i, j, outs[i][j], env.Vars[o])
			}
		}
	}
}

// TestDatapathSimAccumulator streams 32 values and checks the running
// sums appear in order — the feedback latch must carry state between
// consecutive pipeline iterations.
func TestDatapathSimAccumulator(t *testing.T) {
	res := compile(t, accumSource, "accum", core.DefaultOptions())
	sim := dp.NewSim(res.Datapath)
	iters := make([][]int64, 32)
	var want []int64
	total := int64(0)
	for i := range iters {
		v := int64(i*3 - 11)
		iters[i] = []int64{v}
		total += v
		want = append(want, total)
	}
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	// Find the sum_out port index.
	outIdx := -1
	for j, p := range res.Datapath.Outputs {
		if strings.HasSuffix(p.Var.Name, "_out") {
			outIdx = j
		}
	}
	if outIdx < 0 {
		t.Fatalf("no feedback output port in %v", res.Datapath.Outputs)
	}
	for i := range iters {
		if outs[i][outIdx] != want[i] {
			t.Fatalf("iter %d: out=%d want=%d", i, outs[i][outIdx], want[i])
		}
	}
}

// TestDatapathFIRPipeline checks FIR: 5 inputs per cycle, one output per
// cycle, semantics match, and the pipeline actually has >1 stage at a
// tight clock target.
func TestDatapathFIRPipeline(t *testing.T) {
	res := compile(t, firSource, "fir", core.DefaultOptions())
	d := res.Datapath
	if len(d.Inputs) != 5 {
		t.Fatalf("inputs = %d, want 5", len(d.Inputs))
	}
	if d.Stages < 2 {
		t.Errorf("stages = %d, want pipelined (>= 2) at 5ns target", d.Stages)
	}
	sim := dp.NewSim(d)
	rng := rand.New(rand.NewSource(3))
	const n = 40
	iters := make([][]int64, n)
	for i := range iters {
		iters[i] = []int64{
			rng.Int63n(255) - 128, rng.Int63n(255) - 128, rng.Int63n(255) - 128,
			rng.Int63n(255) - 128, rng.Int63n(255) - 128,
		}
	}
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range iters {
		want := 3*in[0] + 5*in[1] + 7*in[2] + 9*in[3] - in[4]
		if outs[i][0] != want {
			t.Fatalf("iter %d: %d, want %d", i, outs[i][0], want)
		}
	}
}

// TestWidthInference checks §4.2.4: widths grow through operators and
// are capped by the semantic type.
func TestWidthInference(t *testing.T) {
	src := `
void w(uint8 a, uint8 b, uint18* o) {
	*o = a * b + 1;
}
`
	res := compile(t, src, "w", core.Options{Optimize: false, PeriodNs: 5})
	d := res.Datapath
	var mulW, addW int
	for _, op := range d.Ops {
		switch op.Instr.Op {
		case vm.MUL:
			mulW = op.Width
		case vm.ADD:
			addW = op.Width
		}
	}
	if mulW != 16 {
		t.Errorf("8x8 multiplier width = %d, want 16", mulW)
	}
	if addW != 17 {
		t.Errorf("16+1 adder width = %d, want 17", addW)
	}
	// Comparator widths are 1 bit.
	res2 := compile(t, ifElseSource, "if_else", core.Options{Optimize: false, PeriodNs: 5})
	for _, op := range res2.Datapath.Ops {
		if op.Instr.Op == vm.SLT && op.Width != 1 {
			t.Errorf("comparator width = %d, want 1", op.Width)
		}
	}
}

// TestWidthSimAgreement: with aggressive narrowing, the simulator (which
// wraps at the inferred hardware width) must still match the reference —
// i.e. inference is sound.
func TestWidthSimAgreement(t *testing.T) {
	src := `
void f(uint4 a, uint4 b, uint4 c, uint16* o) {
	*o = (a + b) * c + (a & b);
}
`
	res := compile(t, src, "f", core.DefaultOptions())
	sim := dp.NewSim(res.Datapath)
	var iters [][]int64
	for a := int64(0); a < 16; a += 3 {
		for b := int64(0); b < 16; b += 5 {
			for c := int64(0); c < 16; c += 7 {
				iters = append(iters, []int64{a, b, c})
			}
		}
	}
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range iters {
		a, b, c := in[0], in[1], in[2]
		// C semantics: uint4 operands promote to int, so no intermediate
		// wrapping; the store truncates to uint16.
		want := ((a+b)*c + (a & b)) % 65536
		if outs[i][0] != want {
			t.Fatalf("f(%d,%d,%d) = %d, want %d", a, b, c, outs[i][0], want)
		}
	}
}

// TestPipelineLatchPlacement: a long adder chain at a tight period must
// split into multiple stages, and loosening the period must reduce the
// stage count.
func TestPipelineLatchPlacement(t *testing.T) {
	src := `
void chain(int a, int b, int* o) {
	*o = ((((((a + b) + a) + b) + a) + b) + a) + b;
}
`
	tight := compile(t, src, "chain", core.Options{PeriodNs: 4, Optimize: false})
	loose := compile(t, src, "chain", core.Options{PeriodNs: 1000, Optimize: false})
	if tight.Datapath.Stages <= loose.Datapath.Stages {
		t.Errorf("tight=%d stages, loose=%d stages", tight.Datapath.Stages, loose.Datapath.Stages)
	}
	if loose.Datapath.Stages != 1 {
		t.Errorf("loose pipeline = %d stages, want 1", loose.Datapath.Stages)
	}
	if tight.Datapath.MaxStageDelay > 4.0+1e-9 {
		t.Errorf("stage delay %.2f exceeds 4ns target", tight.Datapath.MaxStageDelay)
	}
}

// TestMulAccConditionalFeedback reproduces the paper's mul_acc: a
// multiplier-accumulator with an nd (new data) control input expressed
// as an if statement; extra mux and latch hardware appears (§5).
func TestMulAccConditionalFeedback(t *testing.T) {
	src := `
int20 acc;
void mul_acc(int12 a, int12 b, uint1 nd) {
	int i;
	acc = 0;
	for (i = 0; i < 1024; i++) {
		if (nd) { acc = acc + a * b; }
	}
}
`
	res := compile(t, src, "mul_acc", core.DefaultOptions())
	d := res.Datapath
	if len(d.Feedbacks) != 1 {
		t.Fatalf("feedbacks = %d", len(d.Feedbacks))
	}
	muxes := 0
	for _, op := range d.Ops {
		if op.Instr.Op == vm.MUX {
			muxes++
		}
	}
	if muxes < 1 {
		t.Error("conditional accumulate needs a mux")
	}
	sim := dp.NewSim(d)
	iters := [][]int64{
		{3, 4, 1}, {5, 5, 1}, {7, 9, 0}, {2, 2, 1},
	}
	if _, err := sim.Run(iters); err != nil {
		t.Fatal(err)
	}
	if got := sim.State[d.Feedbacks[0].State]; got != 12+25+4 {
		t.Errorf("acc = %d, want 41", got)
	}
}

// TestLUTDatapath: ROM lookups appear as LUT ops and simulate correctly.
func TestLUTDatapath(t *testing.T) {
	src := `
const int16 costab[16] = {16384, 16069, 15137, 13623, 11585, 9102, 6270, 3196,
                          0, -3196, -6270, -9102, -11585, -13623, -15137, -16069};
void coslut(uint4 theta, int16* y) { *y = costab[theta]; }
`
	res := compile(t, src, "coslut", core.DefaultOptions())
	sim := dp.NewSim(res.Datapath)
	var iters [][]int64
	for i := int64(0); i < 16; i++ {
		iters = append(iters, []int64{i})
	}
	outs, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{16384, 16069, 15137, 13623, 11585, 9102, 6270, 3196,
		0, -3196, -6270, -9102, -11585, -13623, -15137, -16069}
	for i := range iters {
		if outs[i][0] != want[i] {
			t.Errorf("costab[%d] = %d, want %d", i, outs[i][0], want[i])
		}
	}
}

// TestSoftNodesEquivalence is the paper's §4.2.2 property: "the soft
// nodes, by themselves, will have the same behavior on a CPU compared
// with the whole data path on a FPGA". We run the SSA graph (software,
// soft nodes only) and the full pipelined data path (hardware, with mux
// and pipe nodes) and compare.
func TestSoftNodesEquivalence(t *testing.T) {
	res := compile(t, ifElseSource, "if_else", core.DefaultOptions())
	rng := rand.New(rand.NewSource(11))
	sim := dp.NewSim(res.Datapath)
	const n = 50
	iters := make([][]int64, n)
	for i := range iters {
		iters[i] = []int64{rng.Int63n(1 << 14), rng.Int63n(1 << 14)}
	}
	hwOuts, err := sim.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range iters {
		swOuts, err := ssaExec(res, in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range swOuts {
			if hwOuts[i][j] != swOuts[j] {
				t.Fatalf("iter %d out %d: hw=%d sw=%d", i, j, hwOuts[i][j], swOuts[j])
			}
		}
	}
}

func ssaExec(res *core.Result, in []int64) ([]int64, error) {
	return ssaExecGraph(res, in)
}

// TestDotOutput sanity-checks the DOT export.
func TestDotOutput(t *testing.T) {
	res := compile(t, ifElseSource, "if_else", core.DefaultOptions())
	dot := res.Datapath.Dot()
	for _, want := range []string{"digraph", "mux", "pipe", "cluster"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// TestSummary checks the structural summary format.
func TestSummary(t *testing.T) {
	res := compile(t, ifElseSource, "if_else", core.Options{Optimize: false, PeriodNs: 5})
	s := res.Datapath.Summary()
	if !strings.Contains(s, "mux=1") || !strings.Contains(s, "pipe=1") {
		t.Errorf("summary = %s", s)
	}
}
