//go:build dpverify

package dp

import "strings"

// planVerifyHook runs the static plan verifier at plan-compile time and
// panics on any violation: under `-tags dpverify` a malformed plan can
// never reach a Step. CI's -race and soak jobs build with the tag, so
// every kernel they compile — Table 1, fuzz-generated, service traffic
// — carries the verifier for free.
func planVerifyHook(p *simPlan, d *Datapath) {
	vs := verifyPlan(p)
	vs = append(vs, verifyPlanDatapath(p, d)...)
	if len(vs) == 0 {
		return
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	panic("dpverify: " + d.Name + ": " + strings.Join(msgs, "; "))
}
