package dp

import (
	"fmt"

	"roccc/internal/hir"
	"roccc/internal/vm"
)

// RefSim is the direct, map-based reference implementation of the
// §4.2.3 cycle-accurate pipeline semantics. It dispatches through the
// instruction structures on every cycle instead of a compiled plan, so
// it stays an executable transcription of the paper's model. Sim is the
// fast implementation; differential tests step both in lockstep and
// require bit-identical outputs and feedback state.
type RefSim struct {
	d *Datapath
	// hist[op] holds recent output values: hist[op][0] is the value
	// computed in the previous cycle, [1] two cycles ago, and so on.
	hist  map[*Op][]int64
	depth int
	// State holds the feedback latches.
	State map[*hir.Var]int64
	cur   map[*Op]int64
	cycle int
	// validLog records, per admitted iteration (== cycle index), whether
	// it carried real data; bubbles are poisoned: they do not commit
	// feedback latches and mask faulting ops. The log is grow-only (one
	// bool per cycle) — acceptable for a reference implementation that is
	// never run at scale; Sim bounds the same information in a ring.
	validLog []bool
}

// NewRefSim creates a reference simulator with feedback latches reset
// to their init values.
func NewRefSim(d *Datapath) *RefSim {
	s := &RefSim{
		d:     d,
		hist:  map[*Op][]int64{},
		depth: d.Stages + 1,
		State: map[*hir.Var]int64{},
		cur:   map[*Op]int64{},
	}
	for _, fb := range d.Feedbacks {
		s.State[fb.State] = fb.State.Type.Wrap(fb.Init)
	}
	for _, op := range d.Ops {
		s.hist[op] = make([]int64, s.depth)
	}
	return s
}

// Cycle returns the number of Steps executed.
func (s *RefSim) Cycle() int { return s.cycle }

// Latency returns the cycle count between feeding an iteration's inputs
// and reading its outputs.
func (s *RefSim) Latency() int { return s.d.Latency() }

// Step advances one clock with real inputs.
func (s *RefSim) Step(inputs []int64) ([]int64, error) {
	return s.step(inputs, true)
}

// Drain advances one clock with a pipeline bubble: zero inputs enter,
// and the bubble carries a poison bit down the pipeline. A stage
// occupied by a bubble (or by nothing, before the first admission) is
// poisoned: its ops cannot fault — division or modulo by zero and LUT
// index overflow are masked to a zero result instead of trapping — and
// it never commits feedback latches, exactly as real hardware ignores
// bubble lanes while flushing (Fig. 2 drain). A fault is raised only
// when the stage's occupant is a valid iteration.
func (s *RefSim) Drain() ([]int64, error) {
	return s.step(make([]int64, len(s.d.Inputs)), false)
}

// stageIsValid reports whether the iteration occupying the given
// pipeline stage in the current cycle carries real data; the occupant
// was admitted stage cycles ago.
func (s *RefSim) stageIsValid(stage int) bool {
	it := s.cycle - stage
	return it >= 0 && it < len(s.validLog) && s.validLog[it]
}

func (s *RefSim) step(inputs []int64, valid bool) ([]int64, error) {
	if len(inputs) != len(s.d.Inputs) {
		return nil, fmt.Errorf("dp: refsim: %d inputs, want %d", len(inputs), len(s.d.Inputs))
	}
	s.validLog = append(s.validLog, valid)
	d := s.d
	clear(s.cur)
	// Input pseudo-ops take this cycle's fed values.
	for i, p := range d.Inputs {
		s.cur[d.DefOf[p.Reg]] = p.Var.Type.Wrap(inputs[i])
	}
	staged := map[*hir.Var]int64{}
	for _, op := range d.Ops {
		if op.Node.Kind == InputNode {
			continue
		}
		val := func(o vm.Operand) int64 {
			if o.IsImm {
				return o.Imm
			}
			def := d.DefOf[o.Reg]
			if def == nil {
				return 0
			}
			delta := op.Stage - def.Stage
			if delta == 0 {
				return s.cur[def]
			}
			// Value crossed delta stage boundaries: read the pipeline
			// register chain (delta cycles of history).
			return s.hist[def][delta-1]
		}
		switch op.Instr.Op {
		case vm.LPR:
			s.cur[op] = s.State[op.Instr.State]
		case vm.SNX:
			// Only the valid iteration occupying this stage writes the
			// latch; poisoned bubbles never commit.
			if s.stageIsValid(op.Stage) {
				staged[op.Instr.State] = op.Instr.Typ.Wrap(val(op.Instr.Srcs[0]))
			}
		case vm.LUT:
			ix := val(op.Instr.Srcs[0])
			if ix < 0 || ix >= int64(op.Instr.Rom.Size) {
				if !s.stageIsValid(op.Stage) {
					// Poisoned lane: the bubble masks the fault.
					s.cur[op] = 0
					break
				}
				// Discard the failed cycle: histories were not shifted
				// yet, so dropping the validLog entry restores the
				// pre-step state exactly (cur is rebuilt every step).
				s.validLog = s.validLog[:len(s.validLog)-1]
				return nil, fmt.Errorf("dp: refsim: LUT index %d out of range for %s", ix, op.Instr.Rom.Name)
			}
			s.cur[op] = op.Instr.Rom.Content[ix]
		default:
			v, err := vm.EvalOp(op.Instr, val)
			if err != nil {
				if !s.stageIsValid(op.Stage) {
					// Poisoned lane: the bubble masks the fault (EvalOp
					// only errors on division/modulo by zero) to a zero
					// result, matching Sim bit for bit.
					v = 0
				} else {
					s.validLog = s.validLog[:len(s.validLog)-1]
					return nil, err
				}
			}
			// The hardware signal is op.Width bits wide; wrap to the
			// inferred hardware type to catch width-inference bugs.
			s.cur[op] = op.HardwareType().Wrap(v)
		}
	}
	// Clock edge: shift histories, commit feedback latches.
	for _, op := range d.Ops {
		h := s.hist[op]
		copy(h[1:], h[:len(h)-1])
		h[0] = s.cur[op]
	}
	for v, nv := range staged {
		s.State[v] = nv
	}
	s.cycle++
	// Output ports are aligned to the pipeline exit: a port whose
	// defining op sits in an earlier stage is delayed through alignment
	// registers so all outputs of one iteration appear together.
	lat := s.Latency()
	outs := make([]int64, len(d.Outputs))
	for i, p := range d.Outputs {
		def := d.DefOf[p.Reg]
		delta := lat - def.Stage
		// Histories were just shifted: h[0] is this cycle's value.
		outs[i] = s.hist[def][delta]
	}
	return outs, nil
}

// Run feeds a sequence of per-iteration input vectors through the
// pipeline (plus drain cycles) and returns one output vector per
// iteration, aligned with the inputs.
func (s *RefSim) Run(iters [][]int64) ([][]int64, error) {
	if len(iters) == 0 {
		return nil, nil
	}
	lat := s.Latency()
	var outs [][]int64
	total := len(iters) + lat
	for c := 0; c < total; c++ {
		var (
			o   []int64
			err error
		)
		if c < len(iters) {
			o, err = s.Step(iters[c])
		} else {
			o, err = s.Drain()
		}
		if err != nil {
			return nil, err
		}
		if c >= lat {
			outs = append(outs, o)
		}
	}
	return outs, nil
}
