package dp

import (
	"fmt"
	"sort"
	"strings"

	"roccc/internal/vm"
)

// Dot renders the data path in Graphviz DOT format: one cluster per
// node (soft/mux/pipe), one record per op, edges for data dependences.
// It reproduces the presentation of the paper's Fig. 6 and Fig. 7.
func (d *Datapath) Dot() string {
	var b strings.Builder
	b.WriteString("digraph datapath {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	byNode := map[*Node][]*Op{}
	for _, op := range d.Ops {
		byNode[op.Node] = append(byNode[op.Node], op)
	}
	nodes := append([]*Node{}, d.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"node %d (%s, level %d)\";\n",
			n.ID, n.ID, n.Kind, n.Level)
		if n.Kind.IsHard() {
			b.WriteString("    style=dashed;\n")
		}
		for _, op := range byNode[n] {
			label := opLabel(op)
			fmt.Fprintf(&b, "    op%d [label=\"%s\"];\n", op.ID, label)
		}
		b.WriteString("  }\n")
	}
	for _, op := range d.Ops {
		for _, r := range op.Instr.Uses() {
			if def := d.DefOf[r]; def != nil && def != op {
				style := ""
				if def.Stage != op.Stage {
					style = " [style=bold]" // crosses a pipeline latch
				}
				fmt.Fprintf(&b, "  op%d -> op%d%s;\n", def.ID, op.ID, style)
			}
		}
	}
	// Feedback latch back-edges (Fig. 7).
	for _, fb := range d.Feedbacks {
		for _, lpr := range fb.LPRs {
			fmt.Fprintf(&b, "  op%d -> op%d [style=dashed, label=\"latch %s\"];\n",
				fb.SNX.ID, lpr.ID, fb.State.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func opLabel(op *Op) string {
	in := op.Instr
	switch in.Op {
	case vm.MOV:
		if op.Node.Kind == InputNode {
			return fmt.Sprintf("in %s", in.Dst)
		}
		return fmt.Sprintf("copy %s", in.Dst)
	case vm.SNX:
		return fmt.Sprintf("SNX %s", in.State.Name)
	case vm.LPR:
		return fmt.Sprintf("LPR %s", in.State.Name)
	case vm.MUX:
		return fmt.Sprintf("mux %s", in.Dst)
	default:
		return fmt.Sprintf("%s %s w%d", in.Op, in.Dst, op.Width)
	}
}

// Summary returns a compact structural description used in golden tests
// and the DESIGN/EXPERIMENTS reports: counts of nodes by kind, ops,
// stages and latches.
func (d *Datapath) Summary() string {
	soft := len(d.NodesOfKind(SoftNode))
	mux := len(d.NodesOfKind(MuxNode))
	pipe := len(d.NodesOfKind(PipeNode))
	return fmt.Sprintf("%s: soft=%d mux=%d pipe=%d ops=%d stages=%d latches=%d feedbacks=%d",
		d.Name, soft, mux, pipe, d.NumOps(), d.Stages, d.LatchCount(), len(d.Feedbacks))
}
