package ip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllCoresHaveReports(t *testing.T) {
	for _, c := range All() {
		if c.Report.Slices <= 0 {
			t.Errorf("%s: %d slices", c.Name, c.Report.Slices)
		}
		if c.Report.ClockMHz <= 0 || c.Report.ClockMHz > 300 {
			t.Errorf("%s: clock %.0f MHz", c.Name, c.Report.ClockMHz)
		}
		if c.OutputsPerCycle <= 0 {
			t.Errorf("%s: throughput %.1f", c.Name, c.OutputsPerCycle)
		}
	}
}

func TestBitCorrelatorModel(t *testing.T) {
	if got := BitCorrelatorModel(0xB6, 0xB6); got != 8 {
		t.Errorf("exact match = %d, want 8", got)
	}
	if got := BitCorrelatorModel(^uint8(0xB6), 0xB6); got != 0 {
		t.Errorf("complement = %d, want 0", got)
	}
	f := func(x, m uint8) bool {
		n := 0
		for i := 0; i < 8; i++ {
			if (x>>uint(i))&1 == (m>>uint(i))&1 {
				n++
			}
		}
		return BitCorrelatorModel(x, m) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDivModelExhaustive(t *testing.T) {
	for num := 0; num < 256; num++ {
		for den := 1; den < 256; den++ {
			got := UDivModel(uint16(num), uint16(den))
			if got != uint16(num/den) {
				t.Fatalf("%d/%d = %d, want %d", num, den, got, num/den)
			}
		}
	}
}

func TestSquareRootModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	check := func(x uint32) {
		got := SquareRootModel(x)
		want := uint32(math.Sqrt(float64(x)))
		for want*want > x {
			want--
		}
		for (want+1)*(want+1) <= x {
			want++
		}
		if got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, got, want)
		}
	}
	for i := 0; i < 2000; i++ {
		check(uint32(rng.Int63n(1 << 24)))
	}
	check(0)
	check(1)
	check((1 << 24) - 1)
}

func TestFIRModel(t *testing.T) {
	w := []int64{1, 2, 3, 4, 5}
	want := int64(3*1+5*2+7*3+9*4-5) >> 3
	if got := FIRModel(w); got != want {
		t.Errorf("fir = %d, want %d", got, want)
	}
}

func TestMulAccModel(t *testing.T) {
	acc := int64(0)
	acc = MulAccModel(acc, 3, 4, true)
	acc = MulAccModel(acc, 100, 100, false)
	acc = MulAccModel(acc, -2, 5, true)
	if acc != 2 {
		t.Errorf("acc = %d, want 2", acc)
	}
}

// TestLift53PerfectReconstruction is the wavelet engine's defining
// property: the (5,3) transform is lossless.
func TestLift53PerfectReconstruction(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := (int(n8%14) + 2) * 2 // even lengths 4..30
		rng := rand.New(rand.NewSource(seed))
		x := make([]int64, n)
		for i := range x {
			x[i] = rng.Int63n(511) - 256
		}
		low, high := Lift53Forward(x)
		back := Lift53Inverse(low, high)
		for i := range x {
			if back[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaOrdering(t *testing.T) {
	// Structural sanity: the cos core (quarter-wave ROM) must be smaller
	// than the arbitrary LUT with identical ports.
	if CosLUT().Report.Slices >= ArbitraryLUT().Report.Slices {
		t.Errorf("cos %d >= arbitrary %d slices", CosLUT().Report.Slices, ArbitraryLUT().Report.Slices)
	}
	// The wavelet engine is the largest baseline.
	w := Wavelet().Report.Slices
	for _, c := range All() {
		if c.Name != "wavelet" && c.Report.Slices > w {
			t.Errorf("%s (%d) larger than wavelet (%d)", c.Name, c.Report.Slices, w)
		}
	}
	// bit_correlator is the smallest.
	b := BitCorrelator().Report.Slices
	for _, c := range All() {
		if c.Name != "bit_correlator" && c.Report.Slices < b {
			t.Errorf("%s (%d) smaller than bit_correlator (%d)", c.Name, c.Report.Slices, b)
		}
	}
}
