// Package ip provides the reproduction's stand-ins for the Xilinx IP
// cores of Table 1 (and the handwritten wavelet engine): for each
// baseline, a behavioural Go model of the core's algorithm and a
// structural synthesis report composed from the same Virtex-II primitive
// models (package synth) that cost the ROCCC-generated circuits.
//
// The microarchitectures follow the documented cores: XNOR-popcount
// correlator, MULT18X18 multiplier-accumulator, pipelined restoring
// divider and square root, half-wave sine/cosine ROM, plain ROM,
// distributed-arithmetic FIR and DCT, and a lifting-scheme (5,3) wavelet
// engine with line buffers.
package ip

import (
	"roccc/internal/synth"
)

// Core is one baseline circuit.
type Core struct {
	Name            string
	Report          *synth.Report
	OutputsPerCycle float64
}

func newReport(name string) *synth.Report {
	return &synth.Report{
		Name:      name,
		Breakdown: map[string]int{},
		Device:    synth.VirtexII2000,
	}
}

func finish(r *synth.Report, critNs float64, mult18s int) *synth.Report {
	for _, s := range r.Breakdown {
		r.Slices += s
	}
	r.Mult18s = mult18s
	r.CriticalPathNs = critNs
	r.ClockMHz = r.Device.ClockFrom(critNs)
	return r
}

// BitCorrelator is the 8-bit correlator: XNOR with a constant mask is
// free (wire inversions), followed by a balanced 3-level popcount adder
// tree and an output register.
func BitCorrelator() Core {
	r := newReport("bit_correlator(IP)")
	r.Breakdown["popcount level 1 (4x 1+1)"] = 4 * synth.AdderSlices(2)
	r.Breakdown["popcount level 2 (2x 2+2)"] = 2 * synth.AdderSlices(3)
	r.Breakdown["popcount level 3 (3+3)"] = synth.AdderSlices(4)
	r.Breakdown["output register"] = synth.RegSlices(4)
	crit := synth.AdderDelay(2) + synth.AdderDelay(3) + synth.AdderDelay(4)
	return Core{Name: "bit_correlator", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// BitCorrelatorModel is the core's behaviour: the number of bits of x
// equal to the mask bits.
func BitCorrelatorModel(x, mask uint8) int {
	same := ^(x ^ mask)
	n := 0
	for i := 0; i < 8; i++ {
		if same&(1<<uint(i)) != 0 {
			n++
		}
	}
	return n
}

// MulAcc is the 12x12 multiplier-accumulator: one MULT18X18 block, a
// 25-bit accumulate adder, and an nd (new data) clock-enable — the
// reason the IP needs no mux where the ROCCC circuit builds an
// alternative branch (§5).
func MulAcc() Core {
	r := newReport("mul_acc(IP)")
	r.Breakdown["accumulate adder (25b)"] = synth.AdderSlices(25)
	r.Breakdown["nd clock-enable + control"] = 3
	r.Breakdown["output register (absorbed)"] = 0
	r.Breakdown["io"] = 2
	// The multiplier is internally registered; the accumulate stage sets
	// the clock together with the MULT18X18 propagation.
	crit := synth.MultBlockDelay(24)
	if a := synth.AdderDelay(25); a > crit {
		crit = a
	}
	return Core{Name: "mul_acc", Report: finish(r, crit, 1), OutputsPerCycle: 1}
}

// MulAccModel accumulates a*b when nd is set.
func MulAccModel(acc, a, b int64, nd bool) int64 {
	if nd {
		return acc + a*b
	}
	return acc
}

// UDiv is the 8-bit pipelined restoring divider: eight stages, each a
// 9-bit subtract/compare, a restore mux, and the {remainder, divisor,
// quotient} pipeline registers.
func UDiv() Core {
	r := newReport("udiv(IP)")
	perStageLogic := synth.AdderSlices(9) + synth.MuxSlices(9)
	perStageRegs := synth.RegSlices(17 + 8 + 8) // rem + den + q carried
	perStage := perStageLogic
	if perStageRegs > perStage {
		perStage = perStageRegs
	}
	r.Breakdown["8 divide stages"] = 8 * perStage
	r.Breakdown["control"] = 8
	// Stage: subtract/compare, restore mux, and the quotient-select
	// control logic of the serial core.
	crit := synth.AdderDelay(9) + synth.MuxDelay() + 0.9
	return Core{Name: "udiv", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// UDivModel is the restoring-division behaviour (quotient of num/den).
func UDivModel(num, den uint16) uint16 {
	if den == 0 {
		return 0xFF
	}
	r := uint32(num)
	d := uint32(den) << 8
	var q uint16
	for i := 0; i < 8; i++ {
		r <<= 1
		q <<= 1
		if r >= d {
			r -= d
			q |= 1
		}
	}
	return q
}

// SquareRoot is the 24-bit pipelined restoring square root: twelve
// stages of a 26-bit add/sub, select mux and root/remainder registers.
func SquareRoot() Core {
	r := newReport("square_root(IP)")
	perStage := synth.AdderSlices(26) + synth.AdderSlices(26) + synth.MuxSlices(26) +
		synth.RegSlices(24+12)
	r.Breakdown["12 sqrt stages"] = 12 * perStage
	r.Breakdown["control"] = 9
	crit := 2*synth.AdderDelay(26) + synth.MuxDelay()
	return Core{Name: "square_root", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// SquareRootModel computes floor(sqrt(x)) by the restoring bit-pair
// method the core implements.
func SquareRootModel(x uint32) uint32 {
	var rem, root uint32
	rem = x
	for i := 0; i < 12; i++ {
		b := uint32(1) << uint(22-2*i)
		if rem >= root+b {
			rem -= root + b
			root = root>>1 + b
		} else {
			root >>= 1
		}
	}
	return root
}

// CosLUT is the Xilinx sine/cosine lookup core: a quarter-wave ROM with
// mirror/negate logic, 10-bit phase in, 16-bit amplitude out.
func CosLUT() Core {
	r := newReport("cos(IP)")
	r.Breakdown["quarter-wave ROM + mirror"] = synth.HalfWaveRomSlices(1024, 16)
	crit := synth.RomDelay(256) + synth.AdderDelay(16)*0.5 + synth.MuxDelay()
	return Core{Name: "cos", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// ArbitraryLUT is a full 1024x16 ROM core.
func ArbitraryLUT() Core {
	r := newReport("arbitrary_lut(IP)")
	r.Breakdown["1024x16 ROM"] = synth.RomSlices(1024, 16)
	crit := synth.RomDelay(1024)
	return Core{Name: "arbitrary_lut", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// FIR is the pair of 5-tap 8-bit constant-coefficient filters in
// distributed arithmetic: per filter, four dual-bit DA ROMs over the
// five tap bits, a scaling adder tree, and the input shift registers.
// "For Xilinx IP FIR ... the multiplications with constants are
// implemented using distributed arithmetic technique" (§5).
func FIR() Core {
	r := newReport("fir(IP)")
	perFilter := 4*synth.RomSlices(32, 12) +
		3*synth.AdderSlices(16) +
		synth.RegSlices(5*8) + // tap shift registers
		synth.RegSlices(16) // output register
	r.Breakdown["2x DA filter"] = 2 * perFilter
	r.Breakdown["bus interface + control"] = 22
	crit := synth.RomDelay(32) + 2*synth.AdderDelay(16)
	return Core{Name: "fir", Report: finish(r, crit, 0), OutputsPerCycle: 2}
}

// FIRModel computes one 5-tap output with the paper's coefficients.
func FIRModel(w []int64) int64 {
	return (3*w[0] + 5*w[1] + 7*w[2] + 9*w[3] - w[4]) >> 3
}

// DCT is the 1-D 8-point DA-based DCT core: serialized through a shared
// DA unit, one transformed coefficient per clock (the throughput
// contrast of §5: "The throughput of Xilinx DCT IP is one output data
// per clock cycle, while ROCCC's throughput is eight output data per
// clock cycle").
func DCT() Core {
	r := newReport("dct(IP)")
	r.Breakdown["DA ROMs (8x 16x19)"] = 8 * synth.RomSlices(16, 19)
	r.Breakdown["accumulator tree"] = 4 * synth.AdderSlices(21)
	r.Breakdown["coefficient serializer"] = 8 * synth.MuxSlices(19) / 2
	r.Breakdown["transpose registers"] = synth.RegSlices(8 * 19)
	r.Breakdown["input double buffer"] = synth.RegSlices(8 * 8)
	r.Breakdown["output serializer regs"] = synth.RegSlices(8 * 19)
	r.Breakdown["rounding + control"] = 38
	crit := synth.RomDelay(16) + 2*synth.AdderDelay(21) + synth.MuxDelay() + 0.9
	return Core{Name: "dct", Report: finish(r, crit, 0), OutputsPerCycle: 1}
}

// Wavelet is the handwritten 2-D (5,3) engine the paper compares against
// (not a Xilinx IP): lifting-scheme data path with four image-row line
// buffers, address generation and control.
func Wavelet() Core {
	r := newReport("wavelet(handwritten)")
	r.Breakdown["line buffers (4x32x8)"] = synth.RegSlices(4 * 32 * 8)
	r.Breakdown["vertical lifting (predict+update)"] = 6 * synth.AdderSlices(16)
	r.Breakdown["horizontal lifting"] = 6 * synth.AdderSlices(16)
	r.Breakdown["column delay registers"] = synth.RegSlices(10 * 16)
	r.Breakdown["subband output registers"] = synth.RegSlices(4 * 16)
	r.Breakdown["address generators"] = 2 * (synth.RegSlices(10) + synth.AdderSlices(10) + synth.CmpSlices(10))
	r.Breakdown["control FSM"] = 30
	crit := 3*synth.AdderDelay(16) + 2*synth.MuxDelay() + 2.0 // + line-buffer access
	return Core{Name: "wavelet", Report: finish(r, crit, 0), OutputsPerCycle: 4}
}

// Lift53Forward applies the 1-D (5,3) lifting analysis in place:
// d[n] = x[2n+1] - floor((x[2n]+x[2n+2])/2),
// s[n] = x[2n] + floor((d[n-1]+d[n]+2)/4). Returns (low, high).
func Lift53Forward(x []int64) (low, high []int64) {
	n := len(x) / 2
	high = make([]int64, n)
	low = make([]int64, n)
	at := func(i int) int64 { // symmetric extension
		if i < 0 {
			i = -i
		}
		if i >= len(x) {
			i = 2*(len(x)-1) - i
		}
		return x[i]
	}
	for k := 0; k < n; k++ {
		high[k] = at(2*k+1) - floorDiv(at(2*k)+at(2*k+2), 2)
	}
	hAt := func(i int) int64 {
		if i < 0 {
			i = -i - 1
		}
		if i >= n {
			i = 2*n - 1 - i
		}
		return high[i]
	}
	for k := 0; k < n; k++ {
		low[k] = at(2*k) + floorDiv(hAt(k-1)+hAt(k)+2, 4)
	}
	return low, high
}

// Lift53Inverse reconstructs the signal from the (5,3) subbands.
func Lift53Inverse(low, high []int64) []int64 {
	n := len(low)
	x := make([]int64, 2*n)
	hAt := func(i int) int64 {
		if i < 0 {
			i = -i - 1
		}
		if i >= n {
			i = 2*n - 1 - i
		}
		return high[i]
	}
	for k := 0; k < n; k++ {
		x[2*k] = low[k] - floorDiv(hAt(k-1)+hAt(k)+2, 4)
	}
	at := func(i int) int64 {
		if i < 0 {
			i = -i
		}
		if i >= 2*n {
			i = 2*(2*n-1) - i
		}
		return x[i]
	}
	for k := 0; k < n; k++ {
		x[2*k+1] = high[k] + floorDiv(at(2*k)+at(2*k+2), 2)
	}
	return x
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// All returns the nine baselines in Table 1 row order.
func All() []Core {
	return []Core{
		BitCorrelator(), MulAcc(), UDiv(), SquareRoot(),
		CosLUT(), ArbitraryLUT(), FIR(), DCT(), Wavelet(),
	}
}
