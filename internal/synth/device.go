// Package synth is the reproduction's stand-in for Xilinx ISE 5.1i
// targeting the Virtex-II xc2v2000-5 (§5): a structural area and timing
// model of the CLB fabric. Operators map to 4-input-LUT/slice counts and
// propagation delays; the achievable clock is derived from the worst
// pipeline-stage combinational path plus register overhead.
//
// Both the ROCCC-generated circuits and the hand-structured IP baselines
// (package ip) are costed through the same primitive models, so the
// relative results (the shape of Table 1) do not depend on absolute
// calibration.
package synth

import "math"

// Device describes the target FPGA.
type Device struct {
	Name            string
	Slices          int // total slice count
	Mult18s         int // dedicated 18x18 multiplier blocks
	BRAMs           int // block RAMs
	MaxMHz          float64
	StageOverheadNs float64 // FF clock-to-out + setup + skew per stage
}

// VirtexII2000 models the xc2v2000 at speed grade -5, the paper's target.
var VirtexII2000 = Device{
	Name:            "xc2v2000-5",
	Slices:          10752,
	Mult18s:         56,
	BRAMs:           56,
	MaxMHz:          280,
	StageOverheadNs: 1.55,
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2ceil(n int) int {
	b := 0
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// --- Primitive area models (slices; 1 slice = 2 LUT4 + 2 FF) ---

// RegSlices is the cost of w register bits (2 FFs per slice).
func RegSlices(w int) int { return ceilDiv(w, 2) }

// AdderSlices is a w-bit ripple-carry adder/subtractor on the dedicated
// carry chain (2 bits per slice).
func AdderSlices(w int) int { return ceilDiv(w, 2) }

// LogicSlices is a w-bit 2-input bitwise operation (2 bits per slice).
func LogicSlices(w int) int { return ceilDiv(w, 2) }

// MuxSlices is a w-bit 2:1 multiplexer.
func MuxSlices(w int) int { return ceilDiv(w, 2) }

// CmpSlices is a w-bit comparator (carry chain).
func CmpSlices(w int) int { return ceilDiv(w, 2) }

// MultLUTSlices is an a×b-bit combinational LUT-fabric multiplier
// (partial-product rows compressed in slices).
func MultLUTSlices(a, b int) int { return ceilDiv(a*b, 2) }

// DividerSlices is a w-bit restoring array divider: w subtract/select
// rows.
func DividerSlices(w int) int { return w * (AdderSlices(w) + MuxSlices(w)) }

// BarrelSlices is a w-bit variable shifter (log2(w) mux levels).
func BarrelSlices(w int) int { return ceilDiv(w*log2ceil(w), 2) }

// RomSlices is a size×bits LUT ROM: 16x1 per LUT4 plus an output
// mux/decoder tree.
func RomSlices(size, bits int) int {
	luts := ceilDiv(size, 16) * bits
	tree := 0
	if size > 16 {
		tree = bits * log2ceil(ceilDiv(size, 16)) / 2
	}
	return ceilDiv(luts, 2) + tree + ceilDiv(log2ceil(size), 2)
}

// HalfWaveRomSlices models the Xilinx sine/cosine core trick: only one
// half wave stored, mirrored by a small negate/mux stage (§5).
func HalfWaveRomSlices(size, bits int) int {
	return RomSlices(size/4, bits) + AdderSlices(bits) + MuxSlices(bits) + ceilDiv(log2ceil(size), 2)
}

// KCMSlices prices a constant-coefficient multiplier in the ISE
// "multiplier style LUT" fashion (§5): one 16-deep partial-product ROM
// per 4-bit group of the variable operand plus a combining adder tree.
func KCMSlices(wIn, wOut int) int {
	groups := ceilDiv(wIn, 4)
	s := groups * RomSlices(16, wOut)
	if groups > 1 {
		s += (groups - 1) * AdderSlices(wOut)
	}
	return s
}

// KCMDelay is the LUT-style constant multiplier delay.
func KCMDelay(wIn, wOut int) float64 {
	groups := ceilDiv(wIn, 4)
	return RomDelay(16) + float64(log2ceil(groups))*AdderDelay(wOut)
}

// CSDDigits returns the number of nonzero digits in the canonical
// signed-digit form of c — the adder count of a constant multiplier is
// CSDDigits-1.
func CSDDigits(c int64) int {
	if c < 0 {
		c = -c
	}
	n := 0
	for c != 0 {
		if c&1 != 0 {
			if c&3 == 3 { // ...11 -> +100...-1 (digit -1, carry)
				n++
				c++
			} else {
				n++
			}
		}
		c >>= 1
	}
	return n
}

// ConstMultSlices is a multiply-by-constant as a CSD shift-add network.
func ConstMultSlices(c int64, w int) int {
	adders := CSDDigits(c) - 1
	if adders < 0 {
		adders = 0
	}
	return adders * AdderSlices(w)
}

// --- Primitive delay models (ns, speed grade -5) ---

// lutDelay is one LUT4 plus average local routing.
const lutDelay = 0.95

// AdderDelay is the w-bit carry-chain delay.
func AdderDelay(w int) float64 { return 0.65 + 0.045*float64(w) }

// CmpDelay is the w-bit comparator delay.
func CmpDelay(w int) float64 { return 0.60 + 0.040*float64(w) }

// MuxDelay is a 2:1 mux.
func MuxDelay() float64 { return 0.65 }

// LogicDelay is a 2-input bitwise stage.
func LogicDelay() float64 { return 0.50 }

// MultBlockDelay is the dedicated MULT18X18 combinational delay.
func MultBlockDelay(w int) float64 { return 3.3 + 0.04*float64(w) }

// MultLUTDelay is the LUT-fabric multiplier delay.
func MultLUTDelay(a, b int) float64 { return 1.6 + 0.10*float64(a+b) }

// ConstMultDelay is the CSD shift-add network delay (adder tree depth).
func ConstMultDelay(c int64, w int) float64 {
	adders := CSDDigits(c) - 1
	if adders <= 0 {
		return 0.15 // pure wiring/shift
	}
	depth := int(math.Ceil(math.Log2(float64(adders + 1))))
	return float64(depth) * AdderDelay(w)
}

// DividerDelay is the restoring array divider combinational delay.
func DividerDelay(w int) float64 { return float64(w) * (AdderDelay(w)*0.7 + MuxDelay()*0.4) }

// BarrelDelay is the variable shifter delay.
func BarrelDelay(w int) float64 { return float64(log2ceil(w)) * MuxDelay() }

// RomDelay is the LUT ROM access delay (mux-tree depth grows with size).
func RomDelay(size int) float64 {
	return 1.6 + 0.42*float64(log2ceil(ceilDiv(size, 16)))
}

// ClockFrom converts a worst-case combinational stage delay into an
// achievable clock rate on the device.
func (dv Device) ClockFrom(stageDelayNs float64) float64 {
	period := stageDelayNs + dv.StageOverheadNs
	mhz := 1000.0 / period
	if mhz > dv.MaxMHz {
		return dv.MaxMHz
	}
	return math.Round(mhz)
}
