package synth

import (
	"roccc/internal/dp"
	"roccc/internal/vm"
)

// model.go maps data-path operations to the primitive area/delay models.

// opWidth returns the effective operator width (operand-dominated for
// comparisons).
func opWidth(d *dp.Datapath, op *dp.Op) int {
	w := op.Width
	switch op.Instr.Op {
	case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
		w = 1
		for _, o := range op.Instr.Srcs {
			if o.IsImm {
				continue
			}
			if def := d.DefOf[o.Reg]; def != nil && def.Width > w {
				w = def.Width
			}
		}
	}
	return w
}

// srcWidth returns the width of source operand i.
func srcWidth(d *dp.Datapath, op *dp.Op, i int) int {
	o := op.Instr.Srcs[i]
	if o.IsImm {
		return bitsFor(o.Imm)
	}
	if def := d.DefOf[o.Reg]; def != nil {
		return def.Width
	}
	return 32
}

func bitsFor(v int64) int {
	if v < 0 {
		v = -v
	}
	n := 1
	for x := v; x != 0; x >>= 1 {
		n++
	}
	return n
}

// zeroAreaOp reports whether the opcode maps to pure wiring.
func zeroAreaOp(op vm.Opcode, constShift bool) bool {
	switch op {
	case vm.MOV, vm.LDC, vm.CVT, vm.NOP, vm.NOT, vm.LPR:
		return true
	case vm.SHL, vm.SHR:
		return constShift
	}
	return false
}

// OpSlices returns the slice cost of a data-path op, including its
// pipeline register when the logic cannot absorb the flip-flops.
// usesMult reports whether the op claims a dedicated MULT18X18 block.
// lutMult selects the ISE "multiplier style LUT" costing for constant
// multipliers (the option the paper set for FIR, §5).
func OpSlices(d *dp.Datapath, op *dp.Op, lutMult bool) (slices int, usesMult bool) {
	in := op.Instr
	w := opWidth(d, op)
	constShift := (in.Op == vm.SHL || in.Op == vm.SHR) && len(in.Srcs) > 1 && in.Srcs[1].IsImm
	switch in.Op {
	case vm.ADD, vm.SUB, vm.NEG:
		slices = AdderSlices(w)
	case vm.MUL:
		switch {
		case in.Srcs[0].IsImm:
			slices = constMulArea(in.Srcs[0].Imm, srcWidth(d, op, 1), w, lutMult)
		case in.Srcs[1].IsImm:
			slices = constMulArea(in.Srcs[1].Imm, srcWidth(d, op, 0), w, lutMult)
		case srcWidth(d, op, 0) <= 18 && srcWidth(d, op, 1) <= 18:
			usesMult = true
		default:
			slices = MultLUTSlices(srcWidth(d, op, 0), srcWidth(d, op, 1))
		}
	case vm.DIV, vm.REM:
		if in.Srcs[1].IsImm && isPow2(in.Srcs[1].Imm) {
			slices = 0 // shift wiring
		} else {
			slices = DividerSlices(maxI(srcWidth(d, op, 0), srcWidth(d, op, 1)))
		}
	case vm.AND, vm.IOR, vm.XOR:
		// Masking/setting against a constant is wiring (bit selects and
		// tied levels), not logic.
		if in.Srcs[0].IsImm || in.Srcs[1].IsImm {
			slices = 0
		} else {
			slices = LogicSlices(w)
		}
	case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
		// A 1-bit compare against a constant is a wire or an inverter.
		if w <= 1 && (in.Srcs[0].IsImm || in.Srcs[1].IsImm) {
			slices = 0
		} else {
			slices = CmpSlices(w)
		}
	case vm.MUX:
		slices = MuxSlices(w)
	case vm.SHL, vm.SHR:
		if !constShift {
			slices = BarrelSlices(w)
		}
	case vm.LUT:
		if in.Rom.Half {
			slices = HalfWaveRomSlices(in.Rom.Size, in.Rom.Elem.Bits)
		} else {
			slices = RomSlices(in.Rom.Size, in.Rom.Elem.Bits)
		}
	case vm.SNX:
		slices = RegSlices(in.State.Type.Bits)
	}
	// Pipeline register: a latched op needs RegSlices(width) flip-flops;
	// slices already spent on its logic absorb them (each slice carries
	// two FFs next to its two LUTs), so only the excess is paid.
	if op.Latched && in.Op != vm.SNX {
		slices = maxI(slices, RegSlices(op.Width))
	}
	_ = constShift
	return slices, usesMult
}

// OpDelay returns the combinational delay of a data-path op in ns. It
// satisfies dp.DelayFn, so the pipeliner places latches against the same
// technology model that the area report uses.
func OpDelay(d *dp.Datapath, lutMult bool) dp.DelayFn {
	return func(op *dp.Op) float64 {
		in := op.Instr
		w := opWidth(d, op)
		switch in.Op {
		case vm.MOV, vm.LDC, vm.CVT, vm.NOP:
			return 0.1
		case vm.LPR:
			return 0.25
		case vm.SNX:
			return 0.25
		case vm.ADD, vm.SUB, vm.NEG:
			return AdderDelay(w)
		case vm.MUL:
			switch {
			case in.Srcs[0].IsImm:
				if lutMult {
					return KCMDelay(srcWidth(d, op, 1), w)
				}
				return ConstMultDelay(in.Srcs[0].Imm, srcWidth(d, op, 1)+3)
			case in.Srcs[1].IsImm:
				if lutMult {
					return KCMDelay(srcWidth(d, op, 0), w)
				}
				return ConstMultDelay(in.Srcs[1].Imm, srcWidth(d, op, 0)+3)
			case srcWidth(d, op, 0) <= 18 && srcWidth(d, op, 1) <= 18:
				return MultBlockDelay(w)
			default:
				return MultLUTDelay(srcWidth(d, op, 0), srcWidth(d, op, 1))
			}
		case vm.DIV, vm.REM:
			if in.Srcs[1].IsImm && isPow2(in.Srcs[1].Imm) {
				return 0.1
			}
			return DividerDelay(maxI(srcWidth(d, op, 0), srcWidth(d, op, 1)))
		case vm.AND, vm.IOR, vm.XOR:
			if in.Srcs[0].IsImm || in.Srcs[1].IsImm {
				return 0.15 // masking wiring
			}
			return LogicDelay()
		case vm.NOT:
			return 0.2
		case vm.SEQ, vm.SNE, vm.SLT, vm.SLE:
			if w <= 1 && (in.Srcs[0].IsImm || in.Srcs[1].IsImm) {
				return 0.15 // wire or inverter
			}
			return CmpDelay(w)
		case vm.MUX:
			return MuxDelay()
		case vm.SHL, vm.SHR:
			if len(in.Srcs) > 1 && in.Srcs[1].IsImm {
				return 0.1
			}
			return BarrelDelay(w)
		case vm.LUT:
			if in.Rom.Half {
				// Quarter-wave ROM plus the mirror negate/mux stage.
				return RomDelay(in.Rom.Size/4) + AdderDelay(in.Rom.Elem.Bits)*0.5 + MuxDelay()
			}
			return RomDelay(in.Rom.Size)
		}
		return 0.5
	}
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// constMulArea prices a constant multiplier: a CSD shift-add network
// (partial-sum adders near the variable operand's width), or a KCM
// LUT-group multiplier under the "multiplier style LUT" option.
func constMulArea(c int64, wIn, wOut int, lutMult bool) int {
	if lutMult {
		return KCMSlices(wIn, wOut)
	}
	adders := CSDDigits(c) - 1
	if adders < 0 {
		adders = 0
	}
	return adders * AdderSlices(wIn+3)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
