package synth

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"roccc/internal/dp"
	"roccc/internal/hir"
	"roccc/internal/smartbuf"
)

// Report is the synthesis result for one circuit — the two numbers
// Table 1 compares (clock MHz, area in slices) plus the breakdown.
type Report struct {
	Name           string
	Slices         int
	Mult18s        int
	BRAMs          int
	ClockMHz       float64
	CriticalPathNs float64
	Breakdown      map[string]int
	Device         Device
}

// String renders the report in ISE map-report style.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s on %s\n", r.Name, r.Device.Name)
	fmt.Fprintf(&b, "  slices: %d / %d\n", r.Slices, r.Device.Slices)
	if r.Mult18s > 0 {
		fmt.Fprintf(&b, "  MULT18X18: %d\n", r.Mult18s)
	}
	if r.BRAMs > 0 {
		fmt.Fprintf(&b, "  block RAMs: %d\n", r.BRAMs)
	}
	fmt.Fprintf(&b, "  clock: %.0f MHz (critical path %.2f ns)\n", r.ClockMHz, r.CriticalPathNs)
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %5d slices\n", k, r.Breakdown[k])
	}
	return b.String()
}

// Options configure a synthesis run.
type Options struct {
	Device Device
	// IncludeBuffers adds the smart buffers and controllers to the area
	// (the FIR, DCT and wavelet rows of Table 1 include them).
	BufferConfigs []smartbuf.Config
	// ControllerIters sizes the controller counters (0 = combinational
	// kernel, no controller).
	ControllerIters int
	// ExtraSlices accounts for fixed wrapper logic (I/O registers).
	ExtraSlices int
	// LUTMultipliers applies the ISE "multiplier style LUT" option to
	// constant multipliers (set for the FIR row, §5).
	LUTMultipliers bool
}

// Synthesize costs a compiled data path (plus optional buffers and
// controllers) on the device — the reproduction's substitute for running
// Xilinx ISE on the generated VHDL.
func Synthesize(d *dp.Datapath, opt Options) *Report {
	if opt.Device.Name == "" {
		opt.Device = VirtexII2000
	}
	r := &Report{
		Name:      d.Name,
		Breakdown: map[string]int{},
		Device:    opt.Device,
	}
	// Data-path operators and pipeline registers.
	consumers := map[*dp.Op]int{} // op -> max stage distance to a consumer
	for _, op := range d.Ops {
		for _, reg := range op.Instr.Uses() {
			if def := d.DefOf[reg]; def != nil {
				if delta := op.Stage - def.Stage; delta > consumers[def] {
					consumers[def] = delta
				}
			}
		}
	}
	for _, op := range d.Ops {
		s, usesMult := OpSlices(d, op, opt.LUTMultipliers)
		if usesMult {
			r.Mult18s++
		}
		// Values crossing several stage boundaries ride register chains:
		// the first register is the op's own latch, each further stage
		// adds another rank.
		if delta := consumers[op]; delta > 1 {
			chain := (delta - 1) * RegSlices(op.Width)
			r.Slices += chain
			r.Breakdown["pipeline reg chains"] += chain
		}
		if s == 0 {
			continue
		}
		r.Slices += s
		r.Breakdown[opClass(d, op)] += s
	}
	// Output alignment registers (ports defined before the exit stage).
	lat := d.Latency()
	align := 0
	for _, p := range d.Outputs {
		def := d.DefOf[p.Reg]
		if def != nil && def.Stage < lat {
			align += RegSlices(p.Width) * (lat - def.Stage)
		}
	}
	if align > 0 {
		r.Slices += align
		r.Breakdown["output alignment regs"] += align
	}
	// Smart buffers (window storage + fill counter).
	for i, cfg := range opt.BufferConfigs {
		s := RegSlices(cfg.StorageBits())
		s += RegSlices(16) + CmpSlices(16) // fill counter + ready compare
		addrBits := log2ceil(cfg.ArrayDims[0] * busSecond(cfg))
		s += RegSlices(addrBits) + AdderSlices(addrBits) // address generator
		r.Slices += s
		r.Breakdown[fmt.Sprintf("smart buffer %d", i)] += s
	}
	// Higher-level controller.
	if opt.ControllerIters > 0 {
		bits := log2ceil(opt.ControllerIters + 1)
		s := RegSlices(3) // state
		s += 2 * (RegSlices(bits) + AdderSlices(bits) + CmpSlices(bits))
		r.Slices += s
		r.Breakdown["controller"] += s
	}
	if opt.ExtraSlices > 0 {
		r.Slices += opt.ExtraSlices
		r.Breakdown["wrapper"] += opt.ExtraSlices
	}
	// Timing: the worst pipeline stage of the data path dominates; the
	// buffer/controller paths are short counters.
	r.CriticalPathNs = d.MaxStageDelay
	if r.CriticalPathNs < 1.0 {
		r.CriticalPathNs = 1.0
	}
	r.ClockMHz = opt.Device.ClockFrom(r.CriticalPathNs)
	return r
}

func busSecond(cfg smartbuf.Config) int {
	if len(cfg.ArrayDims) == 2 {
		return cfg.ArrayDims[1]
	}
	return 1
}

func opClass(d *dp.Datapath, op *dp.Op) string {
	in := op.Instr
	switch {
	case in.Op.String() == "mul" && (len(in.Srcs) > 1 && (in.Srcs[0].IsImm || in.Srcs[1].IsImm)):
		return "const multipliers"
	default:
		return in.Op.String() + "s"
	}
}

// Estimate is the fast compile-time area estimator of [13] (§2: "in
// less than one millisecond and within 5% accuracy compile time area
// estimation can be achieved"). Unlike Synthesize it does not analyze
// each operator: it aggregates bit counts per opcode class and applies
// per-class slice densities (the calibrated linear model of [13]). The
// experiment in package exp measures its error and runtime against the
// detailed Synthesize pass.
func Estimate(d *dp.Datapath, opt Options) (slices int, elapsed time.Duration) {
	start := time.Now()
	// Aggregate widths per opcode class in one linear sweep.
	var addBits, cmpBits, muxBits, logicBits, regBits, romSlices, constMulBits int
	mults := 0
	for _, op := range d.Ops {
		in := op.Instr
		w := op.Width
		switch in.Op.String() {
		case "add", "sub", "neg":
			addBits += w
		case "seq", "sne", "slt", "sle":
			// Comparators are sized by their operands.
			ow := opWidth(d, op)
			if ow > 1 || !(in.Srcs[0].IsImm || in.Srcs[1].IsImm) {
				cmpBits += ow
			}
		case "mux":
			muxBits += w
		case "and", "ior", "xor":
			if !(in.Srcs[0].IsImm || in.Srcs[1].IsImm) {
				logicBits += w
			}
		case "mul":
			if len(in.Srcs) > 1 && (in.Srcs[0].IsImm || in.Srcs[1].IsImm) {
				constMulBits += w
			} else {
				mults++
			}
		case "lut":
			if in.Rom.Half {
				romSlices += HalfWaveRomSlices(in.Rom.Size, in.Rom.Elem.Bits)
			} else {
				romSlices += RomSlices(in.Rom.Size, in.Rom.Elem.Bits)
			}
		case "snx":
			regBits += in.State.Type.Bits
		}
		if op.Latched {
			// Compute ops absorb their flip-flops into their own slices;
			// only wire-class ops (copies, conversions, constant shifts)
			// pay for explicit registers.
			constShift := (in.Op.String() == "shl" || in.Op.String() == "shr") &&
				len(in.Srcs) > 1 && in.Srcs[1].IsImm
			if zeroAreaOp(in.Op, constShift) {
				regBits += op.Width
			}
		}
	}
	constMulDensity := 0.8
	if opt.LUTMultipliers {
		constMulDensity = 1.7
	}
	// Deep pipelines carry multi-stage register chains the class sweep
	// cannot see; scale register cost with depth, saturating (values do
	// not live across the whole pipeline).
	stageFactor := 1.0 + 0.25*float64(maxI(d.Stages-2, 0))
	if stageFactor > 2.0 {
		stageFactor = 2.0
	}
	// The +8 intercept covers fixed wrapper costs the class sweep misses
	// (SNX latches, IO, odd slices) — fitted once against Synthesize on
	// the Table 1 suite, as [13] calibrated its per-unit model.
	est := 8 + float64(addBits)*0.5 + float64(cmpBits)*0.5 + float64(muxBits)*0.5 +
		float64(logicBits)*0.5 + float64(regBits)*0.55*stageFactor +
		float64(constMulBits)*constMulDensity + float64(romSlices)
	// Buffers and controller priced by storage.
	for _, cfg := range opt.BufferConfigs {
		est += float64(cfg.StorageBits())*0.5 + 16
	}
	if opt.ControllerIters > 0 {
		est += 12
	}
	_ = mults // dedicated blocks occupy no slices
	return int(est), time.Since(start)
}

// FeedbackRegs counts feedback latch storage, exposed for reports.
func FeedbackRegs(d *dp.Datapath) int {
	n := 0
	for _, fb := range d.Feedbacks {
		n += fb.State.Type.Bits
	}
	return n
}

// KernelBufferConfigs derives the smart-buffer configurations for every
// read window of a kernel (helper shared by exp and cmd tools).
func KernelBufferConfigs(k *hir.Kernel, busElems int) ([]smartbuf.Config, error) {
	var cfgs []smartbuf.Config
	for _, w := range k.Reads {
		c, err := smartbuf.ConfigFor(w, &k.Nest, busElems)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, c)
	}
	return cfgs, nil
}
