package synth_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"roccc/internal/core"
	"roccc/internal/synth"
)

func TestPrimitiveMonotonicity(t *testing.T) {
	// Wider operators cost at least as much and are at least as slow.
	for w := 1; w < 32; w++ {
		if synth.AdderSlices(w+1) < synth.AdderSlices(w) {
			t.Errorf("adder slices not monotone at %d", w)
		}
		if synth.AdderDelay(w+1) < synth.AdderDelay(w) {
			t.Errorf("adder delay not monotone at %d", w)
		}
		if synth.RegSlices(w+1) < synth.RegSlices(w) {
			t.Errorf("reg slices not monotone at %d", w)
		}
	}
	for size := 16; size <= 1024; size *= 2 {
		if synth.RomSlices(size*2, 16) < synth.RomSlices(size, 16) {
			t.Errorf("rom slices not monotone at %d", size)
		}
		if synth.RomDelay(size*2) < synth.RomDelay(size) {
			t.Errorf("rom delay not monotone at %d", size)
		}
	}
}

func TestHalfWaveSmaller(t *testing.T) {
	if synth.HalfWaveRomSlices(1024, 16) >= synth.RomSlices(1024, 16) {
		t.Error("half-wave ROM should be smaller than the full ROM")
	}
}

// TestCSDDigitsCorrect verifies the canonical signed-digit count: the
// CSD form never has two adjacent nonzero digits, and reconstructing any
// c from ±2^k terms needs exactly synth.CSDDigits(c) terms.
func TestCSDDigitsCorrect(t *testing.T) {
	cases := map[int64]int{
		0: 0, 1: 1, 2: 1, 3: 2, 5: 2, 7: 2, 9: 2, 15: 2, 255: 2,
		2048: 1, 2009: 4,
	}
	for c, want := range cases {
		if got := synth.CSDDigits(c); got != want {
			t.Errorf("synth.CSDDigits(%d) = %d, want %d", c, got, want)
		}
	}
	// Property: the CSD digit count never exceeds the plain popcount.
	f := func(v uint16) bool {
		c := int64(v)
		pop := 0
		for x := c; x != 0; x >>= 1 {
			if x&1 != 0 {
				pop++
			}
		}
		d := synth.CSDDigits(c)
		if c == 0 {
			return d == 0
		}
		return d >= 1 && d <= pop
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockFromCapsAtDevice(t *testing.T) {
	dv := synth.VirtexII2000
	if got := dv.ClockFrom(0.5); got != dv.MaxMHz {
		t.Errorf("tiny path clocks at %.0f, want cap %.0f", got, dv.MaxMHz)
	}
	if got := dv.ClockFrom(8.45); math.Abs(got-100) > 1 {
		t.Errorf("8.45ns path = %.0f MHz, want ~100", got)
	}
}

func TestSynthesizeReportFormat(t *testing.T) {
	src := `void f(int12 a, int12 b, int24* o) { *o = a * b; }`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := synth.Synthesize(res.Datapath, synth.Options{})
	if rep.Mult18s != 1 {
		t.Errorf("12x12 multiply should claim one MULT18X18, got %d", rep.Mult18s)
	}
	out := rep.String()
	for _, want := range []string{"xc2v2000-5", "MULT18X18", "clock:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWideMulFallsToLUTFabric(t *testing.T) {
	src := `void f(unsigned int a, unsigned int b, unsigned int* o) { *o = a * b; }`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := synth.Synthesize(res.Datapath, synth.Options{})
	if rep.Mult18s != 0 {
		t.Error("32x32 multiply exceeds the MULT18X18")
	}
	if rep.Slices < 100 {
		t.Errorf("32x32 LUT multiplier suspiciously small: %d slices", rep.Slices)
	}
}

func TestDividerCostly(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = a / b; }`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := synth.Synthesize(res.Datapath, synth.Options{})
	if rep.Slices < 200 {
		t.Errorf("variable 32-bit divider too cheap: %d slices", rep.Slices)
	}
	// Power-of-two division is wiring.
	src2 := `void f(int a, int* o) { *o = a / 8; }`
	res2, err := core.CompileSource(src2, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep2 := synth.Synthesize(res2.Datapath, synth.Options{})
	if rep2.Slices > 40 {
		t.Errorf("div-by-8 should be near-free, got %d slices", rep2.Slices)
	}
}

func TestKCMVsCSD(t *testing.T) {
	src := `void f(int8 a, int16* o) { *o = (int16)(9 * a); }`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	csd := synth.Synthesize(res.Datapath, synth.Options{})
	kcm := synth.Synthesize(res.Datapath, synth.Options{LUTMultipliers: true})
	if kcm.Slices <= csd.Slices {
		t.Errorf("LUT-style constant multiplier (%d) should cost more than CSD (%d)",
			kcm.Slices, csd.Slices)
	}
}

func TestEstimateFast(t *testing.T) {
	src := `void f(int a, int b, int* o) { *o = a * 3 + b * 5 + (a - b); }`
	res, err := core.CompileSource(src, "f", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, elapsed := synth.Estimate(res.Datapath, synth.Options{})
	if elapsed.Milliseconds() >= 1 {
		t.Errorf("estimate took %s, want < 1ms", elapsed)
	}
}

func TestConstMultDelayGrowsWithDigits(t *testing.T) {
	if synth.ConstMultDelay(2, 16) >= synth.ConstMultDelay(2009, 16) {
		t.Error("4-digit constant should be slower than a power of two")
	}
}
