package dpverify_test

import (
	"testing"

	"roccc/internal/bench"
	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/dpverify"
)

// TestTable1KernelsVerifyClean is the acceptance gate behind
// cmd/rocccvet: every Table 1 kernel, compiled as the paper compiled
// it, must satisfy every static invariant under every execution
// backend. A failure here means the compiler produced an artifact that
// breaks one of its own documented contracts.
func TestTable1KernelsVerifyClean(t *testing.T) {
	for _, k := range bench.All() {
		res, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", k.Name, err)
		}
		for _, b := range dp.Backends() {
			vs, err := dpverify.VerifyResult(res, k.BusElems, k.Scalars, b)
			if err != nil {
				t.Errorf("%s/%s: %v", k.Name, b, err)
				continue
			}
			for _, v := range vs {
				t.Errorf("%s/%s: %s", k.Name, b, v)
			}
		}
	}
}

// TestVerifySourceRejectsBadC asserts compile failures surface as
// errors, not as invariant violations of a nonexistent artifact.
func TestVerifySourceRejectsBadC(t *testing.T) {
	_, err := dpverify.VerifySource("void k(int a { }", "k", core.DefaultOptions(), 1, nil, dp.BackendInterp)
	if err == nil {
		t.Fatal("malformed source verified without error")
	}
}
