// Package dpverify aggregates the repo's static invariant verifiers
// into one pass over a compiled kernel: the data-path plan checks
// (dp.Verify — ring offsets, ringNeed, wrap congruence, the A/B/C batch
// partition, the closed-form feedback cone), the system-plan and
// smart-buffer capacity checks (netlist.VerifySystem), and the VHDL
// structural checks (vhdl.VerifyDatapathFiles / VerifyKernelFiles).
// Nothing here executes a cycle: every check is a static re-derivation
// of a contract from the compiled artifact.
//
// cmd/rocccvet drives this package over Table 1 and the checked-in fuzz
// corpus; under the `dpverify` build tag the dp and netlist slices also
// run automatically at plan-compile time.
package dpverify

import (
	"fmt"

	"roccc/internal/core"
	"roccc/internal/dp"
	"roccc/internal/netlist"
	"roccc/internal/synth"
	"roccc/internal/vhdl"
)

// Report is one kernel × backend verification outcome.
type Report struct {
	Kernel  string
	Backend dp.Backend
	// Violations are the named invariant failures; empty means verified.
	Violations []dp.Violation
}

// VerifyResult statically checks every compiled artifact of one kernel
// under one execution backend: the simulator plan (with the backend's
// compiled structures forced, so threaded/cone lowering runs), the
// system plan and smart buffers for streaming kernels, and the emitted
// VHDL file set. Build failures (bad buffer geometry, missing scalars)
// are returned as errors — they are compile rejections, not invariant
// violations in an artifact that exists.
func VerifyResult(res *core.Result, bus int, scalars map[string]int64, backend dp.Backend) ([]dp.Violation, error) {
	if bus <= 0 {
		bus = 1
	}
	// Force the backend's compiled structures onto the shared plan
	// before verifying: the threaded/cone lowering must exist for the
	// backend-specific checks (and for -race CI) to mean anything.
	dp.NewSimWith(res.Datapath, backend)

	k := res.Kernel
	streaming := k.Nest.Depth() > 0
	var vs []dp.Violation
	if streaming {
		sys, err := netlist.NewSystem(k, res.Datapath, netlist.Config{
			BusElems: bus, Scalars: scalars, Backend: backend,
		})
		if err != nil {
			return dp.Verify(res.Datapath), fmt.Errorf("dpverify: building system for %s: %w", k.Name, err)
		}
		// VerifySystem covers dp.Verify plus the system and buffer layers.
		vs = netlist.VerifySystem(sys)
	} else {
		vs = dp.Verify(res.Datapath)
	}

	files := vhdl.EmitDatapath(res.Datapath)
	if streaming && len(k.Reads) > 0 {
		cfgs, err := synth.KernelBufferConfigs(k, bus)
		if err != nil {
			return vs, fmt.Errorf("dpverify: buffer configuration for %s: %w", k.Name, err)
		}
		files = vhdl.EmitKernel(k, files, cfgs, res.Datapath.Latency())
		vs = append(vs, vhdl.VerifyKernelFiles(k, res.Datapath, files)...)
	} else {
		vs = append(vs, vhdl.VerifyDatapathFiles(res.Datapath, files)...)
	}
	return vs, nil
}

// VerifySource compiles a kernel from C source and verifies it under
// one backend — the corpus entry point.
func VerifySource(src, fname string, opt core.Options, bus int, scalars map[string]int64, backend dp.Backend) ([]dp.Violation, error) {
	res, err := core.CompileSource(src, fname, opt)
	if err != nil {
		return nil, fmt.Errorf("dpverify: compiling %s: %w", fname, err)
	}
	return VerifyResult(res, bus, scalars, backend)
}
