// DCT: the paper's highest-throughput kernel. The 8-point 1-D DCT
// processes one 8-sample block per clock — eight outputs per cycle
// against the Xilinx IP's one (§5) — because the stride-8 window feeds a
// fully-unrolled block data path.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roccc"
	"roccc/internal/bench"
	"roccc/internal/exp"
)

func main() {
	k := bench.DCT()
	res, err := k.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Datapath.Summary())
	fmt.Printf("multipliers shared through the even/odd butterfly symmetry (CSE)\n\n")

	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: k.BusElems})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := make([]int64, 64)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("X", in); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Output("Y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed 8 blocks (64 samples) in %d cycles\n", sys.Cycles())
	fmt.Println("block 0 coefficients:", out[:8])

	t, err := exp.DCTThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput (reproducing §5):\n")
	fmt.Printf("  Xilinx IP: %3.0f MHz x %.0f/cycle = %5.0f Msamples/s\n",
		t.IPClockMHz, t.IPOutsPerCycle, t.IPMsps)
	fmt.Printf("  ROCCC:     %3.0f MHz x %.0f/cycle = %5.0f Msamples/s  (%.1fx overall)\n",
		t.RocccClockMHz, t.RocccOutsPerCycle, t.RocccMsps, t.Speedup)
}
