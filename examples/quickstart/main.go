// Quickstart: compile the paper's 5-tap FIR (Fig. 3) from C to a
// pipelined data path, print the generated VHDL, synthesize it on the
// Virtex-II model, and stream data through the full execution model of
// Fig. 2 — verifying hardware against software.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roccc"
)

const firC = `
int A[21];
int C[17];
void fir() {
	int i;
	for (i = 0; i < 17; i = i + 1) {
		C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
	}
}
`

func main() {
	// 1. Compile (front end, scalar replacement, SSA, data path, §4).
	res, err := roccc.Compile(firC, "fir", roccc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported data-path function (Fig. 3c):")
	fmt.Println(res.Kernel.DataPathC())
	fmt.Println()
	fmt.Println(res.Datapath.Summary())

	// 2. Generate VHDL (§4.2.4).
	files, err := roccc.GenerateVHDL(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %d VHDL files:\n", len(files))
	for _, f := range files {
		fmt.Printf("  %s (%d bytes)\n", f.Name, len(f.Content))
	}

	// 3. Synthesize on the Virtex-II model (§5).
	fmt.Println()
	fmt.Println(roccc.Synthesize(res, 1))

	// 4. Run the full system (Fig. 2) and check against software.
	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	in := make([]int64, 21)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("A", in); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Output("C")
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := 0; i < 17; i++ {
		want := 3*in[i] + 5*in[i+1] + 7*in[i+2] + 9*in[i+3] - in[i+4]
		if out[i] != want {
			fmt.Printf("C[%d] = %d, want %d\n", i, out[i], want)
			ok = false
		}
	}
	fmt.Printf("\nran 17 iterations in %d cycles (pipeline latency %d)\n",
		sys.Cycles(), res.Datapath.Latency())
	if ok {
		fmt.Println("hardware output == software output: OK")
	}
}
