// Wavelet: the paper's largest design — the 2-D (5,3) wavelet engine of
// Table 1's last row ("the standard lossless JPEG2000 compression
// transform"), with address generators, a 2-D smart buffer and a wide
// data path producing four subband samples per iteration.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roccc"
	"roccc/internal/bench"
)

func main() {
	k := bench.Wavelet()
	res, err := k.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Datapath.Summary())
	w := res.Kernel.Reads[0]
	lo0, e0 := w.Span(0)
	lo1, e1 := w.Span(1)
	fmt.Printf("window: %dx%d over a %dx%d image, stride 2x2, %d taps\n",
		e0, e1, w.Arr.Dims[0], w.Arr.Dims[1], len(w.Elems))
	_ = lo0
	_ = lo1

	cfg, err := roccc.BufferConfig(res, 0, k.BusElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D smart buffer: %d bits (line buffers + window)\n\n", cfg.StorageBits())

	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: k.BusElems})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in := make([]int64, 32*32)
	for i := range in {
		in[i] = rng.Int63n(255) - 128
	}
	if err := sys.LoadInput("img", in); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed a 32x32 image into 4 subbands (%d samples each) in %d cycles\n",
		14*14, sys.Cycles())
	for _, name := range []string{"LL", "LH", "HL", "HH"} {
		out, err := sys.Output(name)
		if err != nil {
			log.Fatal(err)
		}
		var energy int64
		for _, v := range out {
			energy += v * v
		}
		fmt.Printf("  %s energy: %d\n", name, energy)
	}
	fmt.Println("\nsynthesis:")
	fmt.Println(roccc.Synthesize(res, k.BusElems))
}
