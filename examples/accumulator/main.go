// Accumulator: the paper's Fig. 4 walk-through. The loop-carried scalar
// sum is detected by the front-end data-flow analysis, annotated with
// ROCCC_load_prev / ROCCC_store2next, and realized as a feedback latch
// (Fig. 7) that updates once per clock at initiation interval 1.
package main

import (
	"fmt"
	"log"

	"roccc"
)

const accumC = `
int A[32];
int sum;
void accum() {
	int i;
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum = sum + A[i];
	}
}
`

func main() {
	res, err := roccc.Compile(accumC, "accum", roccc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported data-path function (Fig. 4c):")
	fmt.Println(res.Kernel.DataPathC())
	fmt.Println()
	for _, fb := range res.Datapath.Feedbacks {
		fmt.Printf("feedback latch: %s (reset to %d), %d LPR reader(s), SNX stage %d\n",
			fb.State.Name, fb.Init, len(fb.LPRs), fb.SNX.Stage)
	}

	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: 1})
	if err != nil {
		log.Fatal(err)
	}
	in := make([]int64, 32)
	var want int64
	for i := range in {
		in[i] = int64(i + 1)
		want += in[i]
	}
	if err := sys.LoadInput("A", in); err != nil {
		log.Fatal(err)
	}
	sim, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	got, ok := sys.FeedbackValue(sim, "sum")
	if !ok {
		log.Fatal("no feedback latch named sum")
	}
	fmt.Printf("\nsum(1..32) in hardware = %d (want %d) after %d cycles\n", got, want, sys.Cycles())
	fmt.Println("one loop iteration retired per clock: the accumulate feedback")
	fmt.Println("path stays inside a single pipeline stage (II = 1).")
}
