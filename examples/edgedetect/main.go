// Edge detection: the image-processing workload the paper's introduction
// motivates ("very large speedups ... for a variety of applications
// including image and signal processing"). A 3x3 Sobel-like operator
// slides over a 2-D image; the compiler builds the 2-D smart buffer
// (line buffers) automatically from the window access pattern.
package main

import (
	"fmt"
	"log"
	"math"

	"roccc"
)

const sobelC = `
int8 img[24][24];
int16 mag[24][24];
void sobel() {
	int i; int j;
	int gx; int gy;
	for (i = 1; i < 23; i++) {
		for (j = 1; j < 23; j++) {
			gx = img[i-1][j+1] + 2*img[i][j+1] + img[i+1][j+1]
			   - img[i-1][j-1] - 2*img[i][j-1] - img[i+1][j-1];
			gy = img[i+1][j-1] + 2*img[i+1][j] + img[i+1][j+1]
			   - img[i-1][j-1] - 2*img[i-1][j] - img[i-1][j+1];
			mag[i][j] = (int16)(gx*gx + gy*gy);
		}
	}
}
`

func main() {
	res, err := roccc.Compile(sobelC, "sobel", roccc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Datapath.Summary())
	w := res.Kernel.Reads[0]
	lo0, e0 := w.Span(0)
	lo1, e1 := w.Span(1)
	fmt.Printf("window on img: rows [%d,%d) cols [%d,%d) — %d taps\n",
		lo0, lo0+e0, lo1, lo1+e1, len(w.Elems))
	cfg, err := roccc.BufferConfig(res, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smart buffer: %d bits of line-buffer storage (2-D reuse)\n", cfg.StorageBits())

	sys, err := roccc.NewSystem(res, roccc.SystemConfig{BusElems: 1})
	if err != nil {
		log.Fatal(err)
	}
	// A synthetic image: a bright disc on a dark background.
	in := make([]int64, 24*24)
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			d := math.Hypot(float64(r-12), float64(c-12))
			if d < 7 {
				in[r*24+c] = 100
			}
		}
	}
	if err := sys.LoadInput("img", in); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Output("mag")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d windows in %d cycles\n",
		res.Kernel.Nest.TotalIterations(), sys.Cycles())
	fmt.Println("edge magnitude (o = edge, . = flat):")
	for r := 1; r < 23; r += 1 {
		line := make([]byte, 0, 24)
		for c := 1; c < 23; c++ {
			if out[r*24+c] > 1000 {
				line = append(line, 'o')
			} else {
				line = append(line, '.')
			}
		}
		fmt.Println(string(line))
	}
	reads, _ := 0, 0
	_ = reads
	fmt.Println("every pixel was fetched from BRAM exactly once (smart-buffer reuse)")
}
